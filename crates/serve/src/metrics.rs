//! Per-request and per-shard serving metrics.
//!
//! Every simulated request leaves a [`RequestMetric`] splitting its
//! end-to-end latency into time-in-queue and time-in-service; the
//! simulator folds them into a [`ServeSummary`] with latency percentiles,
//! per-shard utilization and the fleet-wide queue-depth trajectory — the
//! quantities the degenerate `shards / latency` throughput model of the
//! old fleet study could not express.
//!
//! Two accounting regimes produce the same summary shape (see
//! [`MetricsMode`](crate::MetricsMode)): the default **streaming** mode
//! folds every request into a [`StreamingLatency`] — counters plus three
//! constant-space P² percentile trackers — so a sweep over millions of
//! virtual requests runs in O(1) memory; **exact** mode materializes the
//! per-request records and the full queue-depth trajectory for tests and
//! forensics.

/// The life of one simulated request, in virtual microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestMetric {
    /// Request id, monotone in arrival order.
    pub id: usize,
    /// Shard that served the request.
    pub shard: usize,
    /// Arrival (issue) time.
    pub arrival_us: f64,
    /// Service start time (`start - arrival` is the queueing delay).
    pub start_us: f64,
    /// Completion time.
    pub completion_us: f64,
}

impl RequestMetric {
    /// End-to-end latency: completion − arrival.
    pub fn latency_us(&self) -> f64 {
        self.completion_us - self.arrival_us
    }

    /// Time spent waiting (central or per-shard queue) before service.
    pub fn queue_us(&self) -> f64 {
        self.start_us - self.arrival_us
    }

    /// Time spent in service on the shard.
    pub fn service_us(&self) -> f64 {
        self.completion_us - self.start_us
    }
}

/// Latency distribution snapshot — re-exported from the unified
/// `sparsenn-obs` accounting (same five fields, same nearest-rank
/// [`LatencyStats::of`] this crate used to define locally).
pub use sparsenn_obs::LatencyStats;

/// The streaming accumulator behind the simulator's default metrics
/// mode — re-exported from `sparsenn-obs`, where the fleet's per-shard
/// books and the frontend's per-class stats now share it. Exact
/// count/mean/max plus constant-space P² p50/p95/p99.
pub use sparsenn_obs::LatencyStat as StreamingLatency;

/// One shard's share of the simulated work.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardUsage {
    /// Shard name (from its spec).
    pub name: String,
    /// Requests the shard served.
    pub served: usize,
    /// Total time the shard spent serving, µs.
    pub busy_us: f64,
    /// `busy_us / makespan` — the fraction of the simulated span the
    /// shard was working.
    pub utilization: f64,
}

/// Fleet-wide queue-depth statistics (requests waiting, not in service).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueStats {
    /// Largest number of simultaneously waiting requests.
    pub max_depth: usize,
    /// Time-weighted mean waiting count over the makespan.
    pub mean_depth: f64,
    /// `(virtual time µs, waiting requests)` after every depth change —
    /// the queue-depth trajectory. Populated only in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact); empty in the
    /// default streaming mode (`max_depth` and `mean_depth` are exact in
    /// both).
    pub trajectory: Vec<(f64, usize)>,
}

/// Everything a simulation run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSummary {
    /// Dispatch policy that ran ([`Scheduler::name`]).
    ///
    /// [`Scheduler::name`]: sparsenn_core::engine::Scheduler::name
    pub scheduler: String,
    /// Workload description.
    pub workload: String,
    /// Requests completed (every issued request completes).
    pub requests: usize,
    /// Virtual time of the last completion, µs.
    pub makespan_us: f64,
    /// Achieved throughput: `requests / makespan`, requests per second.
    pub throughput_rps: f64,
    /// End-to-end latency distribution. In the default streaming mode
    /// the mean and max are exact and p50/p95/p99 are P² estimates; in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact) every field is
    /// the exact nearest-rank statistic.
    pub latency: LatencyStats,
    /// Mean time-in-queue per request, µs.
    pub queue_us_mean: f64,
    /// Mean time-in-service per request, µs.
    pub service_us_mean: f64,
    /// Per-shard usage, one entry per shard in spec order.
    pub shards: Vec<ShardUsage>,
    /// Waiting-request depth over time.
    pub queue: QueueStats,
    /// Per-request records, in completion order. Populated only in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact); empty in the
    /// default streaming mode, which holds memory at O(in-flight)
    /// however many requests the workload issues.
    pub per_request: Vec<RequestMetric>,
}

impl ServeSummary {
    /// Exports the summary into a [`MetricsRegistry`] under `serve.*`
    /// names: run-level counters and gauges, the end-to-end latency
    /// distribution, queue statistics and per-shard usage.
    ///
    /// [`MetricsRegistry`]: sparsenn_obs::MetricsRegistry
    pub fn export_metrics(&self, registry: &mut sparsenn_obs::MetricsRegistry) {
        registry.inc("serve.requests", self.requests as u64);
        registry.set_gauge("serve.makespan_us", self.makespan_us);
        registry.set_gauge("serve.throughput_rps", self.throughput_rps);
        registry.set_gauge("serve.queue_us_mean", self.queue_us_mean);
        registry.set_gauge("serve.service_us_mean", self.service_us_mean);
        registry.record_latency("serve.latency", &self.latency);
        registry.set_gauge("serve.queue.max_depth", self.queue.max_depth as f64);
        registry.set_gauge("serve.queue.mean_depth", self.queue.mean_depth);
        for (i, shard) in self.shards.iter().enumerate() {
            let p = format!("serve.shard{i}");
            registry.inc(&format!("{p}.served"), shard.served as u64);
            registry.set_gauge(&format!("{p}.busy_us"), shard.busy_us);
            registry.set_gauge(&format!("{p}.utilization"), shard.utilization);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_metric_decomposes_latency() {
        let r = RequestMetric {
            id: 0,
            shard: 1,
            arrival_us: 10.0,
            start_us: 14.0,
            completion_us: 19.0,
        };
        assert_eq!(r.queue_us(), 4.0);
        assert_eq!(r.service_us(), 5.0);
        assert_eq!(r.latency_us(), 9.0);
        assert!((r.queue_us() + r.service_us() - r.latency_us()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::of(&values);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-12);
        // Small populations: p99 of 2 samples is the max.
        let s = LatencyStats::of(&[3.0, 1.0]);
        assert_eq!(s.p50_us, 1.0);
        assert_eq!(s.p99_us, 3.0);
    }

    #[test]
    fn empty_population_is_all_zero() {
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
    }
}
