//! Per-request and per-shard serving metrics.
//!
//! Every simulated request leaves a [`RequestMetric`] splitting its
//! end-to-end latency into time-in-queue and time-in-service; the
//! simulator folds them into a [`ServeSummary`] with latency percentiles,
//! per-shard utilization and the fleet-wide queue-depth trajectory — the
//! quantities the degenerate `shards / latency` throughput model of the
//! old fleet study could not express.
//!
//! Two accounting regimes produce the same summary shape (see
//! [`MetricsMode`](crate::MetricsMode)): the default **streaming** mode
//! folds every request into a [`StreamingLatency`] — counters plus three
//! constant-space P² percentile trackers — so a sweep over millions of
//! virtual requests runs in O(1) memory; **exact** mode materializes the
//! per-request records and the full queue-depth trajectory for tests and
//! forensics.

/// The life of one simulated request, in virtual microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestMetric {
    /// Request id, monotone in arrival order.
    pub id: usize,
    /// Shard that served the request.
    pub shard: usize,
    /// Arrival (issue) time.
    pub arrival_us: f64,
    /// Service start time (`start - arrival` is the queueing delay).
    pub start_us: f64,
    /// Completion time.
    pub completion_us: f64,
}

impl RequestMetric {
    /// End-to-end latency: completion − arrival.
    pub fn latency_us(&self) -> f64 {
        self.completion_us - self.arrival_us
    }

    /// Time spent waiting (central or per-shard queue) before service.
    pub fn queue_us(&self) -> f64 {
        self.start_us - self.arrival_us
    }

    /// Time spent in service on the shard.
    pub fn service_us(&self) -> f64 {
        self.completion_us - self.start_us
    }
}

/// Latency distribution over a request population, microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median (nearest-rank).
    pub p50_us: f64,
    /// 95th percentile (nearest-rank).
    pub p95_us: f64,
    /// 99th percentile (nearest-rank).
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl LatencyStats {
    /// Computes the stats over `values` (order irrelevant; empty → zeros).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            // Nearest-rank percentile: the smallest value with at least
            // p% of the population at or below it.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            mean_us: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_us: pct(50.0),
            p95_us: pct(95.0),
            p99_us: pct(99.0),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// Constant-memory latency accounting: exact count/mean/max plus P²
/// streaming estimates of p50/p95/p99. Five floats per tracked
/// percentile, no samples retained — the accumulator behind the
/// simulator's streaming mode and the `sparsenn-frontend` per-class
/// stats, sized for sweeps over millions of virtual requests.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingLatency {
    count: u64,
    sum_us: f64,
    max_us: f64,
    p50: sparsenn_core::engine::P2Quantile,
    p95: sparsenn_core::engine::P2Quantile,
    p99: sparsenn_core::engine::P2Quantile,
}

impl Default for StreamingLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingLatency {
    /// An empty accumulator.
    pub fn new() -> Self {
        use sparsenn_core::engine::P2Quantile;
        Self {
            count: 0,
            sum_us: 0.0,
            max_us: 0.0,
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Folds one latency observation in (O(1) time and space).
    pub fn observe(&mut self, latency_us: f64) {
        self.count += 1;
        self.sum_us += latency_us;
        self.max_us = self.max_us.max(latency_us);
        self.p50.observe(latency_us);
        self.p95.observe(latency_us);
        self.p99.observe(latency_us);
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of the observations (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// The summary snapshot: exact mean and max, P²-estimated
    /// percentiles (exact for populations under five — the trackers are
    /// still in their warm-up buffers).
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            mean_us: self.mean_us(),
            p50_us: self.p50.estimate(),
            p95_us: self.p95.estimate(),
            p99_us: self.p99.estimate(),
            max_us: self.max_us,
        }
    }
}

/// One shard's share of the simulated work.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardUsage {
    /// Shard name (from its spec).
    pub name: String,
    /// Requests the shard served.
    pub served: usize,
    /// Total time the shard spent serving, µs.
    pub busy_us: f64,
    /// `busy_us / makespan` — the fraction of the simulated span the
    /// shard was working.
    pub utilization: f64,
}

/// Fleet-wide queue-depth statistics (requests waiting, not in service).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueStats {
    /// Largest number of simultaneously waiting requests.
    pub max_depth: usize,
    /// Time-weighted mean waiting count over the makespan.
    pub mean_depth: f64,
    /// `(virtual time µs, waiting requests)` after every depth change —
    /// the queue-depth trajectory. Populated only in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact); empty in the
    /// default streaming mode (`max_depth` and `mean_depth` are exact in
    /// both).
    pub trajectory: Vec<(f64, usize)>,
}

/// Everything a simulation run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSummary {
    /// Dispatch policy that ran ([`Scheduler::name`]).
    ///
    /// [`Scheduler::name`]: sparsenn_core::engine::Scheduler::name
    pub scheduler: String,
    /// Workload description.
    pub workload: String,
    /// Requests completed (every issued request completes).
    pub requests: usize,
    /// Virtual time of the last completion, µs.
    pub makespan_us: f64,
    /// Achieved throughput: `requests / makespan`, requests per second.
    pub throughput_rps: f64,
    /// End-to-end latency distribution. In the default streaming mode
    /// the mean and max are exact and p50/p95/p99 are P² estimates; in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact) every field is
    /// the exact nearest-rank statistic.
    pub latency: LatencyStats,
    /// Mean time-in-queue per request, µs.
    pub queue_us_mean: f64,
    /// Mean time-in-service per request, µs.
    pub service_us_mean: f64,
    /// Per-shard usage, one entry per shard in spec order.
    pub shards: Vec<ShardUsage>,
    /// Waiting-request depth over time.
    pub queue: QueueStats,
    /// Per-request records, in completion order. Populated only in
    /// [`MetricsMode::Exact`](crate::MetricsMode::Exact); empty in the
    /// default streaming mode, which holds memory at O(in-flight)
    /// however many requests the workload issues.
    pub per_request: Vec<RequestMetric>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_metric_decomposes_latency() {
        let r = RequestMetric {
            id: 0,
            shard: 1,
            arrival_us: 10.0,
            start_us: 14.0,
            completion_us: 19.0,
        };
        assert_eq!(r.queue_us(), 4.0);
        assert_eq!(r.service_us(), 5.0);
        assert_eq!(r.latency_us(), 9.0);
        assert!((r.queue_us() + r.service_us() - r.latency_us()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::of(&values);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p95_us, 95.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-12);
        // Small populations: p99 of 2 samples is the max.
        let s = LatencyStats::of(&[3.0, 1.0]);
        assert_eq!(s.p50_us, 1.0);
        assert_eq!(s.p99_us, 3.0);
    }

    #[test]
    fn empty_population_is_all_zero() {
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
    }
}
