//! The virtual-time event queue.
//!
//! A discrete-event simulation advances by popping the earliest pending
//! event; everything downstream (metrics, scheduler decisions, replay
//! determinism) depends on two properties this queue guarantees:
//!
//! 1. **Monotonicity** — pops never go backwards in virtual time;
//! 2. **Deterministic tie-breaking** — events at the *same* virtual time
//!    pop in the order they were pushed (a strictly increasing sequence
//!    number is the secondary key), so simultaneous completions and
//!    arrivals replay identically on every run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The full event vocabulary of a production-front-end fleet timeline.
///
/// The basic simulator ([`simulate`](crate::simulate)) needs only
/// arrivals and completions; the `sparsenn-frontend` simulator schedules
/// the rest — fault injection, hedging timers, autoscaler epochs — on the
/// same [`EventQueue`], so one deterministic timeline orders compute,
/// failures and control-plane actions against each other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FleetEvent {
    /// A request is issued (open-loop stream or closed-loop re-issue).
    Arrival,
    /// A shard finishes the service attempt it started. `attempt` is the
    /// globally unique attempt id — a cancelled or failed attempt's
    /// completion pops dead (lazy cancellation) when the id no longer
    /// matches what the shard is running.
    Completion {
        /// Shard the attempt ran on.
        shard: usize,
        /// Unique id of the service attempt.
        attempt: u64,
    },
    /// A shard fail-stops: its in-service attempt and queue are lost.
    Fail {
        /// Shard that fails.
        shard: usize,
    },
    /// A failed shard comes back empty and healthy.
    Recover {
        /// Shard that recovers.
        shard: usize,
    },
    /// A shard's service times stretch by `factor` (a straggler appears).
    SlowdownStart {
        /// Shard that slows down.
        shard: usize,
        /// Service-time multiplier, > 1.
        factor: f64,
    },
    /// The straggler returns to nominal speed.
    SlowdownEnd {
        /// Shard that recovers its speed.
        shard: usize,
    },
    /// A hedging timer fires: if the request is still unfinished, a
    /// duplicate attempt is dispatched and the first finisher wins.
    Hedge {
        /// Request the timer watches.
        request: usize,
    },
    /// An autoscaler epoch boundary: observe utilization and tail
    /// latency, decide scale-out/in.
    ScaleTick,
    /// A scaled-out shard finishes warming up and starts taking traffic.
    ShardReady {
        /// Shard that becomes active.
        shard: usize,
    },
    /// The degrade-tier batching deadline fires: if the front end's
    /// degrade buffer still holds its oldest request past the deadline,
    /// the buffer flushes as one batch (a guarded no-op otherwise —
    /// fills flush the buffer early and leave stale deadlines behind).
    BatchFlush,
}

/// One scheduled entry: a payload due at a virtual time.
#[derive(Clone, Debug)]
struct Entry<T> {
    time_us: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // (time, seq) on top. total_cmp gives f64 a total order (the queue
        // never stores NaN, but a total order keeps Ord lawful regardless).
        other
            .time_us
            .total_cmp(&self.time_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of `T` keyed by virtual time (µs), FIFO among equal times.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time_us`.
    ///
    /// # Panics
    ///
    /// Panics on a NaN time — a NaN deadline would never pop in a defined
    /// position.
    pub fn push(&mut self, time_us: f64, payload: T) {
        assert!(!time_us.is_nan(), "event scheduled at NaN virtual time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time_us,
            seq,
            payload,
        });
    }

    /// Pops the earliest event: smallest time, then earliest push.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time_us, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(5.0, i);
        }
        for i in 0..16 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        let mut q = EventQueue::new();
        q.push(2.0, "late-first-pushed");
        q.push(0.0, "early");
        assert_eq!(q.pop(), Some((0.0, "early")));
        q.push(2.0, "late-second-pushed");
        q.push(1.0, "middle");
        assert_eq!(q.pop(), Some((1.0, "middle")));
        assert_eq!(q.pop(), Some((2.0, "late-first-pushed")));
        assert_eq!(q.pop(), Some((2.0, "late-second-pushed")));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_deadline_is_rejected() {
        EventQueue::new().push(f64::NAN, ());
    }
}
