//! The discrete-event fleet simulator.
//!
//! One global virtual timeline, N shards, a pluggable
//! [`Scheduler`](sparsenn_core::engine::Scheduler) — the same trait the
//! live [`Fleet`](sparsenn_core::engine::Fleet) dispatches with. Two
//! event kinds drive the run:
//!
//! * **Arrival** — a request is issued (by the open-loop generator, or by
//!   a closed-loop client finishing its previous request). The scheduler
//!   sees a [`ShardView`] snapshot per shard and places the request: on
//!   an idle shard (service starts immediately), behind a busy shard (it
//!   joins that shard's FIFO queue), or — returning `None` — in the
//!   central queue, to be claimed by the first shard that frees up
//!   (exactly the live fleet's blocked-caller semantics).
//! * **Completion** — a shard finishes its request, records the metric,
//!   and pulls its next request from its own queue first, then from the
//!   central queue.
//!
//! Ties on the timeline break by push order ([`EventQueue`]), so a run is
//! a pure function of `(shards, scheduler, workload)` — every replay is
//! identical, which is what lets scheduler A-vs-B comparisons attribute
//! every microsecond of difference to policy.

use crate::events::EventQueue;
use crate::metrics::{
    LatencyStats, QueueStats, RequestMetric, ServeSummary, ShardUsage, StreamingLatency,
};
use crate::workload::Workload;
use sparsenn_core::engine::{Scheduler, ShardView};
use std::collections::VecDeque;

/// How a simulation accounts for its requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsMode {
    /// Constant-memory accounting (the [`simulate`] default): exact
    /// counts, means, maxima and queue-depth integrals, P²-estimated
    /// latency percentiles. `per_request` and `queue.trajectory` stay
    /// empty, so a sweep over millions of virtual requests holds memory
    /// at O(shards + in-flight).
    #[default]
    Streaming,
    /// Materialize every [`RequestMetric`] and the full queue-depth
    /// trajectory; all latency statistics are exact nearest-rank. Memory
    /// is O(total requests) — for tests and forensics.
    Exact,
}

/// One simulated shard: a name and its modelled per-request service times.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Shard name (e.g. the backend's `name()`).
    pub name: String,
    /// Modelled service times, microseconds. Request `i` costs
    /// `service_us[i % len]` on this shard — feed each backend's
    /// per-sample [`time_us`](sparsenn_core::engine::RunRecord::time_us)
    /// table for realistic variance, or a single mean.
    pub service_us: Vec<f64>,
}

impl ShardSpec {
    /// A shard with one constant service time.
    pub fn uniform(name: impl Into<String>, service_us: f64) -> Self {
        Self {
            name: name.into(),
            service_us: vec![service_us],
        }
    }

    /// A shard serving request `i` in `service_us[i % len]` µs.
    pub fn with_table(name: impl Into<String>, service_us: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            service_us,
        }
    }

    /// A shard whose service-time table is **measured wall-clock**, not a
    /// model: each input is run `reps` times through the backend (after
    /// one untimed warm-up pass, so one-time costs like the kernel
    /// backend's weight repack don't pollute the table) and the minimum
    /// per-input latency becomes that request's service time. Feed a
    /// [`KernelBackend`](sparsenn_core::engine::KernelBackend) to drive
    /// the virtual-time simulator with real CPU numbers.
    ///
    /// # Errors
    ///
    /// Whatever the backend's `run` returns for the first failing input
    /// ([`SparseNnError`](sparsenn_core::SparseNnError)).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn from_measured(
        name: impl Into<String>,
        backend: &dyn sparsenn_core::engine::InferenceBackend,
        net: &sparsenn_core::model::fixedpoint::FixedNetwork,
        inputs: &[Vec<sparsenn_core::numeric::Q6_10>],
        mode: sparsenn_core::model::fixedpoint::UvMode,
        reps: usize,
    ) -> Result<Self, sparsenn_core::SparseNnError> {
        assert!(!inputs.is_empty(), "need at least one input to measure");
        let reps = reps.max(1);
        backend.run(net, &inputs[0], mode)?; // warm-up (pack, caches)
        let mut service_us = Vec::with_capacity(inputs.len());
        for input in inputs {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                backend.run(net, input, mode)?;
                best = best.min(t.elapsed().as_secs_f64() * 1e6);
            }
            service_us.push(best);
        }
        Ok(Self::with_table(name, service_us))
    }

    fn service_for(&self, request: usize) -> f64 {
        self.service_us[request % self.service_us.len()]
    }

    /// Mean modelled service time, µs.
    pub fn mean_service_us(&self) -> f64 {
        self.service_us.iter().sum::<f64>() / self.service_us.len() as f64
    }
}

/// Offered load that would keep every shard exactly busy: the fleet's
/// modelled capacity, requests per second.
pub fn fleet_capacity_rps(shards: &[ShardSpec]) -> f64 {
    shards
        .iter()
        .map(|s| {
            let mean = s.mean_service_us();
            if mean > 0.0 {
                1e6 / mean
            } else {
                0.0
            }
        })
        .sum()
}

/// Why a simulation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The fleet has no shards.
    NoShards,
    /// A shard's service table is empty or contains a non-finite or
    /// negative time.
    BadServiceTable {
        /// Offending shard index.
        shard: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// The workload parameters are invalid.
    InvalidWorkload(String),
    /// The batching policy's parameters are invalid
    /// ([`BatchPolicy::validate`](sparsenn_core::engine::BatchPolicy::validate)).
    InvalidPolicy(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoShards => f.write_str("a simulated fleet needs at least one shard"),
            ServeError::BadServiceTable { shard, reason } => {
                write!(f, "shard {shard} service table: {reason}")
            }
            ServeError::InvalidWorkload(reason) => write!(f, "invalid workload: {reason}"),
            ServeError::InvalidPolicy(reason) => write!(f, "invalid batch policy: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival,
    Completion { shard: usize },
}

#[derive(Clone, Copy, Debug)]
struct Request {
    id: usize,
    arrival_us: f64,
}

struct ShardState {
    /// FIFO queue of requests placed behind this shard.
    queue: VecDeque<Request>,
    /// The in-service request and its start time.
    current: Option<(Request, f64)>,
    /// Virtual time the in-service request completes.
    busy_until: f64,
    /// Sum of modelled service of everything in `queue`.
    queued_work_us: f64,
    served: usize,
    busy_us: f64,
}

impl ShardState {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            current: None,
            busy_until: 0.0,
            queued_work_us: 0.0,
            served: 0,
            busy_us: 0.0,
        }
    }

    fn idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    fn backlog_us(&self, now_us: f64) -> f64 {
        let in_service = match self.current {
            Some(_) => (self.busy_until - now_us).max(0.0),
            None => 0.0,
        };
        in_service + self.queued_work_us
    }
}

/// Runs one simulation to completion in the default
/// [`MetricsMode::Streaming`] — constant memory however many requests
/// the workload issues.
///
/// Deterministic: the summary is a pure function of the arguments, and
/// the *timeline* (makespan, throughput, per-shard usage, queue depths)
/// is bit-identical across both metrics modes — the mode changes only
/// how latencies are summarized, never what the fleet does.
///
/// # Errors
///
/// [`ServeError`] when the fleet is empty, a service table is unusable,
/// or the workload parameters are invalid.
pub fn simulate(
    shards: &[ShardSpec],
    scheduler: &dyn Scheduler,
    workload: &Workload,
) -> Result<ServeSummary, ServeError> {
    simulate_with(shards, scheduler, workload, MetricsMode::Streaming)
}

/// [`simulate`] with an explicit [`MetricsMode`]. Use
/// [`MetricsMode::Exact`] when a test or post-mortem needs the
/// per-request records or the queue-depth trajectory.
///
/// # Errors
///
/// [`ServeError`] when the fleet is empty, a service table is unusable,
/// or the workload parameters are invalid.
pub fn simulate_with(
    shards: &[ShardSpec],
    scheduler: &dyn Scheduler,
    workload: &Workload,
    mode: MetricsMode,
) -> Result<ServeSummary, ServeError> {
    if shards.is_empty() {
        return Err(ServeError::NoShards);
    }
    for (i, s) in shards.iter().enumerate() {
        if s.service_us.is_empty() {
            return Err(ServeError::BadServiceTable {
                shard: i,
                reason: "empty".into(),
            });
        }
        if let Some(bad) = s.service_us.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(ServeError::BadServiceTable {
                shard: i,
                reason: format!("service time {bad} is not finite and non-negative"),
            });
        }
    }
    workload.validate().map_err(ServeError::InvalidWorkload)?;

    let total_requests = workload.requests();
    let mut events: EventQueue<Event> = EventQueue::new();
    let mut open_arrivals = workload.open_arrivals();
    let (closed_think_us, mut to_issue) = match *workload {
        Workload::ClosedLoop {
            concurrency,
            requests,
            think_us,
        } => {
            // Every client issues its first request at t = 0; the rest
            // are completion-driven.
            for _ in 0..concurrency.min(requests) {
                events.push(0.0, Event::Arrival);
            }
            (think_us, requests - concurrency.min(requests))
        }
        _ => {
            let stream = open_arrivals.as_mut().expect("open workload has a stream");
            if let Some(t) = stream.next() {
                events.push(t, Event::Arrival);
            }
            (0.0, 0)
        }
    };

    let mut state: Vec<ShardState> = shards.iter().map(|_| ShardState::new()).collect();
    let mut central: VecDeque<Request> = VecDeque::new();
    let mut next_id = 0usize;
    let mut makespan_us = 0.0f64;

    // Completion accounting. Both modes keep the exact count and the
    // exact queue/service-time sums; Exact additionally materializes the
    // records, Streaming folds latencies into the P² accumulator.
    let exact = mode == MetricsMode::Exact;
    let mut completed: Vec<RequestMetric> = if exact {
        Vec::with_capacity(total_requests)
    } else {
        Vec::new()
    };
    let mut done = 0usize;
    let mut streaming = StreamingLatency::new();
    let mut queue_us_sum = 0.0f64;
    let mut service_us_sum = 0.0f64;

    // Queue-depth trajectory (waiting requests, central + per-shard) with
    // a time-weighted integral for the mean. The integral and maximum are
    // kept in both modes; the trajectory only in Exact.
    let mut trajectory: Vec<(f64, usize)> = if exact { vec![(0.0, 0)] } else { Vec::new() };
    let mut depth_area = 0.0f64; // ∫ depth dt
    let mut last_t = 0.0f64;
    let mut last_depth = 0usize;
    let mut max_depth = 0usize;

    let start_service =
        |i: usize, req: Request, now: f64, state: &mut [ShardState], ev: &mut EventQueue<Event>| {
            let service = shards[i].service_for(req.id);
            state[i].current = Some((req, now));
            state[i].busy_until = now + service;
            ev.push(now + service, Event::Completion { shard: i });
        };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Arrival => {
                // For open workloads, pull the next arrival lazily so the
                // event queue stays O(in-flight), not O(total requests).
                if let Some(stream) = open_arrivals.as_mut() {
                    if let Some(t) = stream.next() {
                        events.push(t, Event::Arrival);
                    }
                }
                let req = Request {
                    id: next_id,
                    arrival_us: now,
                };
                next_id += 1;
                let views: Vec<ShardView> = state
                    .iter()
                    .enumerate()
                    .map(|(i, s)| ShardView {
                        healthy: true,
                        idle: s.idle(),
                        depth: s.depth(),
                        backlog_us: s.backlog_us(now),
                        service_us: shards[i].service_for(req.id),
                    })
                    .collect();
                match scheduler.pick(&views) {
                    Some(i) if i < state.len() => {
                        if state[i].idle() {
                            start_service(i, req, now, &mut state, &mut events);
                        } else {
                            state[i].queued_work_us += shards[i].service_for(req.id);
                            state[i].queue.push_back(req);
                        }
                    }
                    // No usable pick: hold centrally until a shard frees
                    // — blocked-caller semantics, exactly what the live
                    // fleet does with a waiting caller. A busy shard's
                    // completion drains the central queue, so this
                    // terminates whenever anything is running; only with
                    // *every* shard idle (central queue necessarily empty
                    // — the last busy shard never goes idle while it can
                    // pull central work) would no completion ever come,
                    // so that case falls back to the first idle shard,
                    // mirroring the live fleet's progress guarantee.
                    _ => {
                        if state.iter().all(ShardState::idle) {
                            start_service(0, req, now, &mut state, &mut events);
                        } else {
                            central.push_back(req);
                        }
                    }
                }
            }
            Event::Completion { shard } => {
                let (req, start_us) = state[shard]
                    .current
                    .take()
                    .expect("completion fired for an idle shard");
                state[shard].served += 1;
                state[shard].busy_us += now - start_us;
                makespan_us = makespan_us.max(now);
                done += 1;
                queue_us_sum += start_us - req.arrival_us;
                service_us_sum += now - start_us;
                if exact {
                    completed.push(RequestMetric {
                        id: req.id,
                        shard,
                        arrival_us: req.arrival_us,
                        start_us,
                        completion_us: now,
                    });
                } else {
                    streaming.observe(now - req.arrival_us);
                }
                // A closed-loop client re-issues after its think time.
                if to_issue > 0 {
                    to_issue -= 1;
                    events.push(now + closed_think_us, Event::Arrival);
                }
                // Own queue first (FIFO), then the central queue (FIFO).
                if let Some(next) = state[shard].queue.pop_front() {
                    state[shard].queued_work_us -= shards[shard].service_for(next.id);
                    start_service(shard, next, now, &mut state, &mut events);
                } else if let Some(next) = central.pop_front() {
                    start_service(shard, next, now, &mut state, &mut events);
                }
            }
        }
        // Track the waiting population after every event.
        let depth = central.len() + state.iter().map(|s| s.queue.len()).sum::<usize>();
        if depth != last_depth {
            depth_area += last_depth as f64 * (now - last_t);
            if exact {
                trajectory.push((now, depth));
            }
            last_t = now;
            last_depth = depth;
            max_depth = max_depth.max(depth);
        }
    }
    depth_area += last_depth as f64 * (makespan_us - last_t).max(0.0);

    debug_assert_eq!(done, total_requests, "every request completes");
    let latency = if exact {
        let latencies: Vec<f64> = completed.iter().map(RequestMetric::latency_us).collect();
        LatencyStats::of(&latencies)
    } else {
        streaming.stats()
    };
    let n = done.max(1) as f64;
    let queue_us_mean = queue_us_sum / n;
    let service_us_mean = service_us_sum / n;
    let shard_usage = shards
        .iter()
        .zip(&state)
        .map(|(spec, s)| ShardUsage {
            name: spec.name.clone(),
            served: s.served,
            busy_us: s.busy_us,
            utilization: if makespan_us > 0.0 {
                s.busy_us / makespan_us
            } else {
                0.0
            },
        })
        .collect();
    Ok(ServeSummary {
        scheduler: scheduler.name().to_string(),
        workload: workload.to_string(),
        requests: done,
        makespan_us,
        throughput_rps: if makespan_us > 0.0 {
            done as f64 / (makespan_us * 1e-6)
        } else {
            0.0
        },
        latency,
        queue_us_mean,
        service_us_mean,
        shards: shard_usage,
        queue: QueueStats {
            max_depth,
            mean_depth: if makespan_us > 0.0 {
                depth_area / makespan_us
            } else {
                0.0
            },
            trajectory,
        },
        per_request: completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_core::engine::{FastestCompletion, FirstIdle, LeastQueued};

    fn homogeneous(n: usize, service_us: f64) -> Vec<ShardSpec> {
        (0..n)
            .map(|i| ShardSpec::uniform(format!("machine-{i}"), service_us))
            .collect()
    }

    /// A measured table is real wall-clock: positive, finite, one entry
    /// per input — and it drives the simulator like any modelled table.
    #[test]
    fn from_measured_builds_a_usable_table() {
        use sparsenn_core::engine::KernelBackend;
        use sparsenn_core::linalg::init::seeded_rng;
        use sparsenn_core::model::fixedpoint::{FixedNetwork, UvMode};
        use sparsenn_core::model::{Mlp, PredictedNetwork};
        let mut rng = seeded_rng(7);
        let mlp = Mlp::random(&[24, 32, 10], &mut rng);
        let net =
            FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 3, &mut rng));
        let inputs: Vec<_> = (0..3)
            .map(|s| {
                let x: Vec<f32> = (0..24)
                    .map(|i| if (i + s) % 2 == 0 { 0.0 } else { 0.5 })
                    .collect();
                net.quantize_input(&x)
            })
            .collect();
        let backend = KernelBackend::new();
        let spec =
            ShardSpec::from_measured("kernel", &backend, &net, &inputs, UvMode::On, 3).unwrap();
        assert_eq!(spec.service_us.len(), 3);
        assert!(spec.service_us.iter().all(|&t| t.is_finite() && t > 0.0));
        let workload = Workload::ClosedLoop {
            concurrency: 1,
            requests: 9,
            think_us: 0.0,
        };
        let s = simulate(std::slice::from_ref(&spec), &FirstIdle, &workload).unwrap();
        assert_eq!(s.requests, 9);
        assert!(s.latency.mean_us > 0.0);
    }

    /// The acceptance criterion: closed-loop with concurrency == shards on
    /// a homogeneous fleet has zero queueing — mean latency is exactly the
    /// backend's modelled per-sample service time.
    #[test]
    fn closed_loop_at_fleet_concurrency_has_no_queueing() {
        // Per-sample service table (as a real backend would produce) —
        // request count a multiple of the table, so means match exactly.
        let table = vec![10.0, 14.0, 12.0, 8.0];
        let shards: Vec<ShardSpec> = (0..4)
            .map(|i| ShardSpec::with_table(format!("m{i}"), table.clone()))
            .collect();
        let workload = Workload::ClosedLoop {
            concurrency: 4,
            requests: 64,
            think_us: 0.0,
        };
        for scheduler in [
            &FirstIdle as &dyn crate::Scheduler,
            &LeastQueued,
            &FastestCompletion,
        ] {
            let s = simulate(&shards, scheduler, &workload).unwrap();
            assert_eq!(s.requests, 64);
            assert_eq!(s.queue_us_mean, 0.0, "{}: no request waits", s.scheduler);
            assert_eq!(s.queue.max_depth, 0, "{}", s.scheduler);
            let modelled_mean = shards[0].mean_service_us();
            assert!(
                (s.latency.mean_us - modelled_mean).abs() < 1e-9,
                "{}: mean latency {} vs modelled per-sample time {}",
                s.scheduler,
                s.latency.mean_us,
                modelled_mean
            );
        }
    }

    #[test]
    fn single_shard_fifo_and_conservation() {
        let shards = vec![ShardSpec::uniform("only", 10.0)];
        let s = simulate_with(
            &shards,
            &FirstIdle,
            &Workload::Poisson {
                rate_rps: 200_000.0, // 2 requests per service time: overload
                requests: 200,
                seed: 1,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert_eq!(s.requests, 200);
        assert_eq!(s.shards[0].served, 200);
        // Single server: completions come in request order (FIFO).
        let ids: Vec<usize> = s.per_request.iter().map(|r| r.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        // Overloaded: queueing dominates and the queue gets deep.
        assert!(s.queue_us_mean > s.service_us_mean);
        assert!(s.queue.max_depth > 10);
        // The busy time is exactly requests × service.
        assert!((s.shards[0].busy_us - 2000.0).abs() < 1e-9);
        assert!(s.shards[0].utilization <= 1.0 + 1e-12);
    }

    /// The other acceptance half: on a heterogeneous fleet (fast machine
    /// beside slow SIMD platforms) fastest-expected-completion beats
    /// first-idle on p95 latency.
    #[test]
    fn fastest_completion_beats_first_idle_on_hetero_p95() {
        let shards = vec![
            ShardSpec::uniform("machine", 10.0),
            ShardSpec::uniform("simd-slow", 100.0),
        ];
        // ~73% of fleet capacity (capacity = 110k rps).
        let workload = Workload::Poisson {
            rate_rps: 80_000.0,
            requests: 3000,
            seed: 42,
        };
        let first = simulate(&shards, &FirstIdle, &workload).unwrap();
        let fec = simulate(&shards, &FastestCompletion, &workload).unwrap();
        assert!(
            fec.latency.p95_us < first.latency.p95_us,
            "fec p95 {} must beat first-idle p95 {}",
            fec.latency.p95_us,
            first.latency.p95_us
        );
        assert!(fec.latency.mean_us < first.latency.mean_us);
        // Both served everything; the policies differ in placement only.
        assert_eq!(first.requests, 3000);
        assert_eq!(fec.requests, 3000);
    }

    #[test]
    fn runs_are_deterministic() {
        let shards = vec![
            ShardSpec::with_table("a", vec![5.0, 9.0]),
            ShardSpec::uniform("b", 20.0),
        ];
        let w = Workload::Bursty {
            low_rps: 20_000.0,
            high_rps: 200_000.0,
            period_us: 500.0,
            duty: 0.3,
            requests: 800,
            seed: 9,
        };
        let a = simulate(&shards, &LeastQueued, &w).unwrap();
        let b = simulate(&shards, &LeastQueued, &w).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_load_builds_queues_that_drain() {
        let shards = homogeneous(2, 10.0); // 200k rps capacity
        let s = simulate_with(
            &shards,
            &LeastQueued,
            &Workload::Bursty {
                low_rps: 10_000.0,
                high_rps: 600_000.0, // 3× capacity during bursts
                period_us: 2_000.0,
                duty: 0.25,
                requests: 2000,
                seed: 5,
            },
            MetricsMode::Exact,
        )
        .unwrap();
        assert!(s.queue.max_depth >= 5, "bursts must pile a queue up");
        assert_eq!(
            s.queue.trajectory.last().map(|&(_, d)| d),
            Some(0),
            "the queue drains by the end"
        );
        // Mean arrival rate ≈ 0.25·600k + 0.75·10k = 157.5k < capacity,
        // so mean depth stays well below the burst peak.
        assert!(s.queue.mean_depth < s.queue.max_depth as f64);
    }

    #[test]
    fn closed_loop_throughput_saturates_at_fleet_capacity() {
        let shards = homogeneous(3, 10.0); // 300k rps capacity
        let s = simulate(
            &shards,
            &FirstIdle,
            &Workload::ClosedLoop {
                concurrency: 12, // 4 clients per shard: saturated
                requests: 600,
                think_us: 0.0,
            },
        )
        .unwrap();
        assert!((s.throughput_rps - fleet_capacity_rps(&shards)).abs() < 1000.0);
        for shard in &s.shards {
            assert!(shard.utilization > 0.99, "{shard:?}");
        }
        // Little's law sanity: N = X · R (12 clients, R in seconds).
        let n = s.throughput_rps * s.latency.mean_us * 1e-6;
        assert!((n - 12.0).abs() < 0.5, "Little's law: N ≈ {n}, want 12");
    }

    /// A policy that never places a request mirrors the live fleet's
    /// blocked-caller semantics: requests hold centrally while anything
    /// runs, and the all-idle fallback (shard 0, like the live fleet's
    /// lowest-index idle pick) keeps the system live — so every request
    /// funnels through shard 0 and still completes.
    #[test]
    fn none_picks_match_the_live_fleets_blocked_caller_semantics() {
        struct AlwaysWait;
        impl crate::Scheduler for AlwaysWait {
            fn name(&self) -> &str {
                "always-wait"
            }
            fn pick(&self, _: &[sparsenn_core::engine::ShardView]) -> Option<usize> {
                None
            }
        }
        let shards = homogeneous(3, 10.0);
        let s = simulate(
            &shards,
            &AlwaysWait,
            &Workload::Poisson {
                rate_rps: 50_000.0,
                requests: 120,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(s.requests, 120, "progress despite a never-placing policy");
        assert_eq!(s.shards[0].served, 120, "only the fallback shard works");
        assert_eq!(s.shards[1].served + s.shards[2].served, 0);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        assert_eq!(
            simulate(
                &[],
                &FirstIdle,
                &Workload::ClosedLoop {
                    concurrency: 1,
                    requests: 1,
                    think_us: 0.0
                }
            )
            .unwrap_err(),
            ServeError::NoShards
        );
        let empty_table = vec![ShardSpec {
            name: "x".into(),
            service_us: vec![],
        }];
        assert!(matches!(
            simulate(
                &empty_table,
                &FirstIdle,
                &Workload::ClosedLoop {
                    concurrency: 1,
                    requests: 1,
                    think_us: 0.0
                }
            )
            .unwrap_err(),
            ServeError::BadServiceTable { shard: 0, .. }
        ));
        let nan_table = vec![ShardSpec::uniform("x", f64::NAN)];
        assert!(matches!(
            simulate(
                &nan_table,
                &FirstIdle,
                &Workload::ClosedLoop {
                    concurrency: 1,
                    requests: 1,
                    think_us: 0.0
                }
            )
            .unwrap_err(),
            ServeError::BadServiceTable { shard: 0, .. }
        ));
        assert!(matches!(
            simulate(
                &homogeneous(1, 10.0),
                &FirstIdle,
                &Workload::Poisson {
                    rate_rps: -5.0,
                    requests: 10,
                    seed: 0
                }
            )
            .unwrap_err(),
            ServeError::InvalidWorkload(_)
        ));
    }

    /// The two metrics modes drive the identical timeline: every field
    /// except the latency percentiles (and the deliberately-empty
    /// per-request / trajectory vectors) matches exactly, and the P²
    /// percentile estimates land near the exact nearest-rank values.
    #[test]
    fn streaming_mode_matches_exact_except_percentile_estimation() {
        let shards = vec![
            ShardSpec::with_table("a", vec![8.0, 12.0, 10.0]),
            ShardSpec::uniform("b", 40.0),
        ];
        let w = Workload::Poisson {
            rate_rps: 90_000.0,
            requests: 5000,
            seed: 17,
        };
        let exact = simulate_with(&shards, &LeastQueued, &w, MetricsMode::Exact).unwrap();
        let stream = simulate(&shards, &LeastQueued, &w).unwrap();
        assert_eq!(stream.requests, exact.requests);
        assert_eq!(stream.makespan_us, exact.makespan_us);
        assert_eq!(stream.throughput_rps, exact.throughput_rps);
        assert_eq!(stream.queue_us_mean, exact.queue_us_mean);
        assert_eq!(stream.service_us_mean, exact.service_us_mean);
        assert_eq!(stream.shards, exact.shards);
        assert_eq!(stream.queue.max_depth, exact.queue.max_depth);
        assert_eq!(stream.queue.mean_depth, exact.queue.mean_depth);
        // Mean and max latency are exact in both modes.
        assert!((stream.latency.mean_us - exact.latency.mean_us).abs() < 1e-9);
        assert_eq!(stream.latency.max_us, exact.latency.max_us);
        // Percentiles are P² estimates: close, not identical.
        for (est, truth) in [
            (stream.latency.p50_us, exact.latency.p50_us),
            (stream.latency.p95_us, exact.latency.p95_us),
            (stream.latency.p99_us, exact.latency.p99_us),
        ] {
            let tol = 0.25 * truth.max(1.0);
            assert!(
                (est - truth).abs() <= tol,
                "P² estimate {est} too far from exact {truth}"
            );
        }
        // Streaming holds no per-request state.
        assert!(stream.per_request.is_empty());
        assert!(stream.queue.trajectory.is_empty());
        assert_eq!(exact.per_request.len(), 5000);
    }

    #[test]
    fn capacity_model_sums_shard_rates() {
        let shards = vec![
            ShardSpec::uniform("a", 10.0),  // 100k rps
            ShardSpec::uniform("b", 100.0), // 10k rps
        ];
        assert!((fleet_capacity_rps(&shards) - 110_000.0).abs() < 1e-6);
    }
}
