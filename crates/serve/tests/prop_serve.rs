//! Property tests for the serving simulator's ordering contracts:
//! the event queue's virtual-time order (with deterministic tie-breaking),
//! per-shard FIFO service order under arbitrary arrival sequences, and the
//! batched simulator's no-starvation guarantee (a `SizeOrDeadline` policy
//! never holds a request past its deadline while the shard sits idle).

use proptest::prelude::*;
use sparsenn_core::engine::BatchPolicy;
use sparsenn_serve::{
    simulate_batched, simulate_with, BatchShardSpec, EventQueue, FastestCompletion, FirstIdle,
    LeastQueued, MetricsMode, Scheduler, ShardSpec, Workload,
};

fn scheduler_for(which: usize) -> &'static dyn Scheduler {
    match which % 3 {
        0 => &FirstIdle,
        1 => &LeastQueued,
        _ => &FastestCompletion,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pops come in nondecreasing virtual time, and events pushed at the
    /// *same* time pop in push order — exactly a stable sort by time.
    /// Coarse integer times force plenty of ties.
    #[test]
    fn event_queue_pops_match_a_stable_sort(
        times in prop::collection::vec(0u8..8, 1..80),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(f64::from(t), i);
        }
        let mut expected: Vec<(f64, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (f64::from(t), i))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0)); // stable: push order survives ties
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(&popped, &expected);
        prop_assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// Interleaving pushes and pops preserves the contract: every pop is
    /// the earliest-then-oldest pending event at that moment.
    #[test]
    fn event_queue_is_ordered_under_interleaving(
        ops in prop::collection::vec((0u8..6, any::<bool>()), 1..120),
    ) {
        let mut q = EventQueue::new();
        // Model: pending entries as (time, seq), popped by min (time, seq).
        let mut model: Vec<(f64, usize)> = Vec::new();
        let mut seq = 0usize;
        for &(t, do_pop) in &ops {
            if do_pop {
                let got = q.pop();
                let want = model
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                    .map(|(i, _)| i);
                match want {
                    Some(i) => prop_assert_eq!(got, Some(model.remove(i))),
                    None => prop_assert_eq!(got, None),
                }
            } else {
                q.push(f64::from(t), seq);
                model.push((f64::from(t), seq));
                seq += 1;
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    /// Per-shard service order is FIFO for every scheduler and any
    /// arrival sequence: a request placed on a shard never overtakes an
    /// earlier-placed one. Request ids are monotone in arrival order, so
    /// each shard's served ids must be strictly increasing (completions of
    /// a sequential server come in service-start order).
    #[test]
    fn per_shard_service_order_is_fifo(
        which_scheduler in 0usize..3,
        shard_services in prop::collection::vec(1u32..400, 1..5),
        rate_rps in 5_000.0f64..400_000.0,
        requests in 1usize..300,
        seed in any::<u64>(),
        closed in any::<bool>(),
        concurrency in 1usize..16,
    ) {
        let shards: Vec<ShardSpec> = shard_services
            .iter()
            .enumerate()
            .map(|(i, &s)| ShardSpec::uniform(format!("s{i}"), f64::from(s)))
            .collect();
        let workload = if closed {
            Workload::ClosedLoop { concurrency, requests, think_us: 0.0 }
        } else {
            Workload::Poisson { rate_rps, requests, seed }
        };
        // Exact mode: the FIFO check below reads the per-request records.
        let summary = simulate_with(
            &shards,
            scheduler_for(which_scheduler),
            &workload,
            MetricsMode::Exact,
        )
        .unwrap();
        prop_assert_eq!(summary.requests, requests, "every request completes");
        for shard in 0..shards.len() {
            let ids: Vec<usize> = summary
                .per_request
                .iter()
                .filter(|r| r.shard == shard)
                .map(|r| r.id)
                .collect();
            prop_assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "shard {} served out of arrival order: {:?} ({})",
                shard,
                ids,
                summary.scheduler
            );
        }
        // Conservation: shards' served counts partition the requests.
        let served: usize = summary.shards.iter().map(|s| s.served).sum();
        prop_assert_eq!(served, requests);
        // Causality per request: arrival ≤ start ≤ completion.
        for r in &summary.per_request {
            prop_assert!(r.arrival_us <= r.start_us + 1e-12);
            prop_assert!(r.start_us <= r.completion_us + 1e-12);
        }
    }

    /// `SizeOrDeadline` never starves: for any shard tables, batch cap,
    /// deadline and Poisson load, no dispatched batch sat *idle* (shard
    /// free, policy holding the batch open) longer than the deadline —
    /// and every request completes.
    #[test]
    fn size_or_deadline_never_starves(
        which_scheduler in 0usize..3,
        tables in prop::collection::vec(
            prop::collection::vec(1u32..200, 1..6),
            1..4,
        ),
        max in 1usize..=8,
        deadline_us in 1.0f64..500.0,
        rate_rps in 5_000.0f64..400_000.0,
        requests in 1usize..300,
        seed in any::<u64>(),
    ) {
        let shards: Vec<BatchShardSpec> = tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Cumulative sums keep each table nondecreasing in B, the
                // shape a real amortization table has.
                let mut us = 0.0;
                let table = t.iter().map(|&s| { us += f64::from(s); us }).collect();
                BatchShardSpec::with_table(format!("s{i}"), table)
            })
            .collect();
        let summary = simulate_batched(
            &shards,
            scheduler_for(which_scheduler),
            BatchPolicy::SizeOrDeadline { max, deadline_us },
            &Workload::Poisson { rate_rps, requests, seed },
            MetricsMode::Exact,
        )
        .unwrap();
        prop_assert_eq!(summary.requests, requests, "every request completes");
        for b in &summary.batch_records {
            prop_assert!(
                b.idle_wait_us <= deadline_us + 1e-6,
                "batch on shard {} held open {} µs past a {} µs deadline",
                b.shard,
                b.idle_wait_us - deadline_us,
                deadline_us
            );
            prop_assert!(b.size >= 1 && b.size <= max.max(1), "cap respected");
        }
    }

    /// Per-shard service order stays FIFO on the batched path for any
    /// policy: ordering requests placed on one shard by service start
    /// (ties by id — batch members share a start) reproduces arrival
    /// (= id) order.
    #[test]
    fn batched_per_shard_service_order_is_fifo(
        which_scheduler in 0usize..3,
        immediate in any::<bool>(),
        max in 1usize..=8,
        deadline_us in 1.0f64..500.0,
        rate_rps in 5_000.0f64..400_000.0,
        requests in 1usize..300,
        seed in any::<u64>(),
    ) {
        let shards = vec![
            BatchShardSpec::serial("a", 10.0, 8),
            BatchShardSpec::with_table("b", vec![14.0, 20.0, 24.0, 26.0]),
        ];
        let policy = if immediate {
            BatchPolicy::Immediate
        } else {
            BatchPolicy::SizeOrDeadline { max, deadline_us }
        };
        let summary = simulate_batched(
            &shards,
            scheduler_for(which_scheduler),
            policy,
            &Workload::Poisson { rate_rps, requests, seed },
            MetricsMode::Exact,
        )
        .unwrap();
        prop_assert_eq!(summary.requests, requests);
        for shard in 0..shards.len() {
            let mut by_start: Vec<(f64, usize)> = summary
                .per_request
                .iter()
                .filter(|r| r.shard == shard)
                .map(|r| (r.start_us, r.id))
                .collect();
            by_start.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let ids: Vec<usize> = by_start.iter().map(|&(_, id)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&ids, &sorted, "shard {} is FIFO", shard);
        }
    }
}
