//! The wide MAC accumulator of the PE datapath.

use crate::Fixed;

/// A 64-bit multiply-accumulate register.
///
/// Hardware MAC units keep a guard-banded accumulator much wider than the
/// 16-bit operand words so that long dot products never overflow mid-sum.
/// 64 bits is enough for `2^23` worst-case Q6.10 products (`|p| ≤ 2^30`),
/// far beyond the 4 K-activation layers SparseNN supports — which makes
/// accumulation exactly associative and commutative. That property is what
/// lets the out-of-order activation delivery of the H-tree NoC produce
/// results **bit-identical** to the sequential golden model (paper §V.B).
///
/// # Example
///
/// ```
/// use sparsenn_numeric::{Accumulator, Q6_10};
/// let xs = [0.5f32, -1.25, 3.0];
/// let ws = [2.0f32, 0.75, -0.5];
/// let mut fwd = Accumulator::new();
/// let mut rev = Accumulator::new();
/// for i in 0..3 {
///     fwd.mac(Q6_10::from_f32(ws[i]), Q6_10::from_f32(xs[i]));
///     rev.mac(Q6_10::from_f32(ws[2 - i]), Q6_10::from_f32(xs[2 - i]));
/// }
/// assert_eq!(fwd, rev); // order independent, bit for bit
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Accumulator {
    sum: i64,
}

impl Accumulator {
    /// Creates a cleared accumulator.
    #[inline]
    pub const fn new() -> Self {
        Self { sum: 0 }
    }

    /// Creates an accumulator holding a raw `Q(2·FRAC)` partial sum.
    ///
    /// Used when partial sums travel through the NoC (the V-phase reduction
    /// embeds an ACC stage in every router, paper Fig. 4(c)).
    #[inline]
    pub const fn from_raw(sum: i64) -> Self {
        Self { sum }
    }

    /// The raw `Q(2·FRAC)` value of the accumulator.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.sum
    }

    /// Multiply-accumulate: `self += w · a` at full precision.
    #[inline]
    pub fn mac<const FRAC: u32>(&mut self, w: Fixed<FRAC>, a: Fixed<FRAC>) {
        self.sum += i64::from(w.wide_mul(a));
    }

    /// Adds another accumulator (the router ACC stage of the V phase).
    #[inline]
    pub fn merge(&mut self, other: Accumulator) {
        self.sum += other.sum;
    }

    /// `true` when no product has been accumulated (or they cancelled).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.sum == 0
    }

    /// Sign of the accumulated pre-activation.
    ///
    /// The U-phase of the predictor only needs this single bit:
    /// `p = sign(U V a)`. Zero is treated as non-positive (the row is
    /// bypassed), matching `sign(0) = 0 ⇒ not scheduled`.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.sum > 0
    }

    /// Writes the accumulator back to a 16-bit word: arithmetic shift by
    /// `FRAC` with round-to-nearest-even, then saturation — the PE's
    /// writeback stage.
    #[inline]
    pub fn to_fixed<const FRAC: u32>(self) -> Fixed<FRAC> {
        let shifted = round_shift_even(self.sum, FRAC);
        let clamped = shifted.clamp(i64::from(i16::MIN), i64::from(i16::MAX));
        Fixed::from_raw(clamped as i16)
    }

    /// Converts the full-precision sum to `f32` (for diagnostics only; the
    /// datapath never does this).
    #[inline]
    pub fn to_f32<const FRAC: u32>(self) -> f32 {
        (self.sum as f64 / (1u64 << (2 * FRAC)) as f64) as f32
    }
}

/// Arithmetic right shift with round-to-nearest, ties to even.
#[inline]
#[allow(clippy::if_same_then_else)] // branches spell out the rounding cases
fn round_shift_even(v: i64, shift: u32) -> i64 {
    if shift == 0 {
        return v;
    }
    let floor = v >> shift;
    let rem = v - (floor << shift);
    let half = 1i64 << (shift - 1);
    if rem > half {
        floor + 1
    } else if rem < half {
        floor
    } else if floor & 1 == 0 {
        floor
    } else {
        floor + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q6_10;

    #[test]
    fn mac_accumulates_exact_products() {
        let mut acc = Accumulator::new();
        acc.mac(Q6_10::from_f32(1.5), Q6_10::from_f32(2.0));
        acc.mac(Q6_10::from_f32(-0.5), Q6_10::from_f32(1.0));
        // 3.0 - 0.5 = 2.5 in Q20: 2.5 * 2^20
        assert_eq!(acc.raw(), (2.5 * f64::powi(2.0, 20)) as i64);
        assert_eq!(acc.to_fixed::<10>().to_f32(), 2.5);
    }

    #[test]
    fn writeback_rounds_ties_to_even() {
        // raw Q20 value exactly halfway between two Q10 codes.
        let half = 1i64 << 9; // 0.5 ulp at FRAC=10
        assert_eq!(
            Accumulator::from_raw((4 << 10) + half)
                .to_fixed::<10>()
                .raw(),
            4
        );
        assert_eq!(
            Accumulator::from_raw((5 << 10) + half)
                .to_fixed::<10>()
                .raw(),
            6
        );
        assert_eq!(
            Accumulator::from_raw(-((5i64 << 10) + half))
                .to_fixed::<10>()
                .raw(),
            -6,
        );
        assert_eq!(
            Accumulator::from_raw((4 << 10) + half + 1)
                .to_fixed::<10>()
                .raw(),
            5
        );
    }

    #[test]
    fn writeback_saturates() {
        let big = Accumulator::from_raw(i64::MAX / 2);
        assert_eq!(big.to_fixed::<10>(), Q6_10::MAX);
        let small = Accumulator::from_raw(i64::MIN / 2);
        assert_eq!(small.to_fixed::<10>(), Q6_10::MIN);
    }

    #[test]
    fn merge_matches_flat_accumulation() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        let mut flat = Accumulator::new();
        for i in 0..16i16 {
            let w = Q6_10::from_raw(i * 100 - 800);
            let x = Q6_10::from_raw(i * 37 - 300);
            if i % 2 == 0 {
                a.mac(w, x);
            } else {
                b.mac(w, x);
            }
            flat.mac(w, x);
        }
        a.merge(b);
        assert_eq!(a, flat);
    }

    #[test]
    fn sign_predicate_treats_zero_as_inactive() {
        assert!(!Accumulator::new().is_positive());
        assert!(Accumulator::from_raw(1).is_positive());
        assert!(!Accumulator::from_raw(-1).is_positive());
    }
}
