//! 16-bit fixed-point arithmetic substrate for the SparseNN reproduction.
//!
//! The SparseNN accelerator (Zhu et al., DATE 2018) quantizes all weights and
//! activations to **16-bit fixed point** (Table II of the paper). This crate
//! provides the exact arithmetic the hardware datapath performs, so that the
//! cycle-level simulator in `sparsenn-sim` can be verified **bit for bit**
//! against a functional golden model — the reproduction's analogue of the
//! paper's "functional simulation ... verified against the fixed point
//! simulation in Matlab".
//!
//! # Layout
//!
//! * [`Fixed`] — a two's-complement 16-bit word with a const-generic number of
//!   fraction bits. The accelerator uses [`Q6_10`] (1 sign + 5 integer + 10
//!   fraction bits).
//! * [`Accumulator`] — the wide (64-bit) MAC accumulator. Using an
//!   accumulator wide enough that no intermediate sum can overflow makes
//!   accumulation **order independent**, which is what allows the
//!   out-of-order H-tree delivery of the NoC to be bit-exact with the
//!   in-order golden model (Section V.B of the paper: "the out-of-order input
//!   activations do not affect the computation results").
//! * [`quantize`] — helpers to quantize `f32` tensors and measure the induced
//!   error.
//!
//! # Example
//!
//! ```
//! use sparsenn_numeric::{Q6_10, Accumulator};
//!
//! let w = Q6_10::from_f32(0.5);
//! let a = Q6_10::from_f32(-1.25);
//! let mut acc = Accumulator::new();
//! acc.mac(w, a);
//! acc.mac(w, a);
//! assert_eq!(acc.to_fixed::<10>().to_f32(), -1.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod fixed;
pub mod quantize;

pub use accum::Accumulator;
pub use fixed::{argmax, Fixed, Q6_10};

/// Number of fraction bits used by the SparseNN datapath (Q6.10).
pub const FRAC_BITS: u32 = 10;

/// Width in bits of the fixed-point word used by the accelerator.
pub const WORD_BITS: u32 = 16;
