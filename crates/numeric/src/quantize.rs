//! Tensor quantization helpers.
//!
//! The bridge between the floating-point training world
//! (`sparsenn-train`) and the fixed-point accelerator world
//! (`sparsenn-sim`). Quantization is per-element round-to-nearest with
//! saturation; [`QuantStats`] reports how much signal the Q6.10 grid lost so
//! experiments can confirm the quantization is benign before trusting
//! simulated accuracy.

use crate::Fixed;

/// Quantizes a slice of `f32` values to fixed point.
///
/// # Example
///
/// ```
/// use sparsenn_numeric::quantize::quantize_slice;
/// use sparsenn_numeric::Q6_10;
/// let q: Vec<Q6_10> = quantize_slice(&[0.5, -1.0, 0.3]);
/// assert_eq!(q[0].to_f32(), 0.5);
/// ```
pub fn quantize_slice<const FRAC: u32>(xs: &[f32]) -> Vec<Fixed<FRAC>> {
    xs.iter().map(|&x| Fixed::from_f32(x)).collect()
}

/// Dequantizes a slice of fixed-point values back to `f32`.
pub fn dequantize_slice<const FRAC: u32>(xs: &[Fixed<FRAC>]) -> Vec<f32> {
    xs.iter().map(|x| x.to_f32()).collect()
}

/// Error statistics of a quantization pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuantStats {
    /// Largest absolute difference between an input and its quantized value.
    pub max_abs_error: f32,
    /// Mean absolute difference.
    pub mean_abs_error: f32,
    /// Number of elements that hit the saturation rails.
    pub saturated: usize,
    /// Number of elements quantized.
    pub len: usize,
}

/// Quantizes a slice and reports the induced error.
///
/// # Example
///
/// ```
/// use sparsenn_numeric::quantize::quantize_with_stats;
/// let (q, stats) = quantize_with_stats::<10>(&[0.5, 100.0]);
/// assert_eq!(stats.saturated, 1); // 100.0 is outside Q6.10 range
/// assert_eq!(q.len(), 2);
/// ```
pub fn quantize_with_stats<const FRAC: u32>(xs: &[f32]) -> (Vec<Fixed<FRAC>>, QuantStats) {
    let mut stats = QuantStats {
        len: xs.len(),
        ..QuantStats::default()
    };
    let mut sum_err = 0.0f64;
    let q: Vec<Fixed<FRAC>> = xs
        .iter()
        .map(|&x| {
            let f = Fixed::<FRAC>::from_f32(x);
            if f == Fixed::MAX || f == Fixed::MIN {
                stats.saturated += 1;
            }
            let err = (x - f.to_f32()).abs();
            if err > stats.max_abs_error {
                stats.max_abs_error = err;
            }
            sum_err += f64::from(err);
            f
        })
        .collect();
    if !xs.is_empty() {
        stats.mean_abs_error = (sum_err / xs.len() as f64) as f32;
    }
    (q, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_at_most_half_ulp() {
        let ulp = f32::powi(2.0, -10);
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32) * 0.0137 - 7.0).collect();
        let (_, stats) = quantize_with_stats::<10>(&xs);
        assert!(stats.max_abs_error <= ulp / 2.0 + f32::EPSILON);
        assert_eq!(stats.saturated, 0);
        assert_eq!(stats.len, 1000);
    }

    #[test]
    fn saturation_counted() {
        let (_, stats) = quantize_with_stats::<10>(&[40.0, -40.0, 0.0]);
        assert_eq!(stats.saturated, 2);
    }

    #[test]
    fn empty_slice_is_fine() {
        let (q, stats) = quantize_with_stats::<10>(&[]);
        assert!(q.is_empty());
        assert_eq!(stats.mean_abs_error, 0.0);
    }

    #[test]
    fn dequantize_inverts_quantize_on_grid() {
        let xs = [0.5f32, -0.25, 3.0];
        let q = quantize_slice::<10>(&xs);
        assert_eq!(dequantize_slice(&q), xs.to_vec());
    }
}
