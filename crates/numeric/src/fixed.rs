//! Two's-complement 16-bit fixed-point words.

use std::fmt;
use std::ops::Neg;

/// A 16-bit two's-complement fixed-point number with `FRAC` fraction bits.
///
/// The value represented is `raw / 2^FRAC`. The SparseNN datapath uses
/// [`Q6_10`] (`FRAC = 10`), giving a range of `[-32, 32)` with a resolution
/// of `2^-10 ≈ 0.000977`.
///
/// Addition and subtraction saturate (as a hardware ALU with a saturation
/// stage would); the full-precision product of two words is exposed via
/// [`Fixed::wide_mul`] so the multiplier-accumulator can keep all bits, as
/// the real MAC unit does.
///
/// # Example
///
/// ```
/// use sparsenn_numeric::Q6_10;
/// let x = Q6_10::from_f32(1.5);
/// let y = Q6_10::from_f32(0.25);
/// assert_eq!((x + y).to_f32(), 1.75);
/// assert_eq!(x.wide_mul(y), (1.5f32 * 0.25 * f32::powi(2.0, 20)) as i32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed<const FRAC: u32> {
    raw: i16,
}

/// The Q6.10 format used throughout the SparseNN accelerator (Table II:
/// "16-bit fixed point").
pub type Q6_10 = Fixed<10>;

impl<const FRAC: u32> Fixed<FRAC> {
    /// The representable zero.
    pub const ZERO: Self = Self { raw: 0 };
    /// The smallest positive representable value (`2^-FRAC`).
    pub const EPSILON: Self = Self { raw: 1 };
    /// One, exactly representable for all `FRAC < 15`.
    pub const ONE: Self = Self { raw: 1 << FRAC };
    /// The largest representable value.
    pub const MAX: Self = Self { raw: i16::MAX };
    /// The smallest (most negative) representable value.
    pub const MIN: Self = Self { raw: i16::MIN };

    /// Creates a fixed-point value from its raw two's-complement encoding.
    #[inline]
    pub const fn from_raw(raw: i16) -> Self {
        Self { raw }
    }

    /// Returns the raw two's-complement encoding.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.raw
    }

    /// Quantizes an `f32` with round-to-nearest (ties to even) and
    /// saturation, exactly like a hardware quantizer front end.
    ///
    /// Non-finite inputs saturate: `NAN` maps to zero, `±∞` to `MAX`/`MIN`.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        if x.is_nan() {
            return Self::ZERO;
        }
        let scaled = (x as f64) * f64::from(1u32 << FRAC);
        let rounded = round_ties_even(scaled);
        let clamped = rounded.clamp(i16::MIN as f64, i16::MAX as f64);
        Self {
            raw: clamped as i16,
        }
    }

    /// Converts back to `f32`. Exact: every `i16 / 2^FRAC` fits in an `f32`
    /// mantissa.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from(self.raw) / (1u32 << FRAC) as f32
    }

    /// Saturating addition (the behaviour of the PE writeback stage).
    #[inline]
    pub fn saturating_add(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_add(rhs.raw),
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self {
            raw: self.raw.saturating_sub(rhs.raw),
        }
    }

    /// Full-precision product: `Q(FRAC) × Q(FRAC) → Q(2·FRAC)` in an `i32`.
    ///
    /// This is exact — a 16×16→32 multiplier array loses no bits — and is
    /// what the PE's MAC unit feeds into the wide [`Accumulator`].
    ///
    /// [`Accumulator`]: crate::Accumulator
    #[inline]
    pub fn wide_mul(self, rhs: Self) -> i32 {
        i32::from(self.raw) * i32::from(rhs.raw)
    }

    /// `true` if the encoded value is exactly zero.
    ///
    /// This is the predicate the leading-nonzero detector (LNZD) of the PE
    /// applies to decide whether an activation is broadcast at all.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.raw == 0
    }

    /// `true` if the value is strictly positive.
    ///
    /// The SparseNN predictor schedules a row for computation only when the
    /// predicted pre-activation is positive (`p > 0`).
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.raw > 0
    }

    /// Rectified linear unit: `max(0, self)`, a single mux in hardware.
    #[inline]
    pub fn relu(self) -> Self {
        if self.raw < 0 {
            Self::ZERO
        } else {
            self
        }
    }
}

/// Round a finite `f64` to the nearest integer with ties to even,
/// implemented explicitly so the quantizer matches the documented hardware
/// behaviour on all Rust versions.
#[inline]
#[allow(clippy::if_same_then_else)] // branches spell out the rounding cases
fn round_ties_even(x: f64) -> f64 {
    let floor = x.floor();
    let diff = x - floor;
    if diff > 0.5 {
        floor + 1.0
    } else if diff < 0.5 {
        floor
    } else if (floor as i64) % 2 == 0 {
        floor
    } else {
        floor + 1.0
    }
}

/// Index of the largest value, first occurrence winning ties (the
/// classifier argmax — every layer of the stack must break ties the same
/// way for fixed-point accuracies to agree across backends). Returns 0 for
/// an empty slice.
pub fn argmax<const FRAC: u32>(xs: &[Fixed<FRAC>]) -> usize {
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if v.raw() > xs[best].raw() {
            best = i;
        }
    }
    best
}

impl<const FRAC: u32> std::ops::Add for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl<const FRAC: u32> std::ops::Sub for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl<const FRAC: u32> Neg for Fixed<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            raw: self.raw.saturating_neg(),
        }
    }
}

impl<const FRAC: u32> fmt::Debug for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{}>({} = {})", FRAC, self.raw, self.to_f32())
    }
}

impl<const FRAC: u32> fmt::Display for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl<const FRAC: u32> fmt::LowerHex for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.raw as u16), f)
    }
}

impl<const FRAC: u32> fmt::Binary for Fixed<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.raw as u16), f)
    }
}

impl<const FRAC: u32> From<Fixed<FRAC>> for f32 {
    #[inline]
    fn from(x: Fixed<FRAC>) -> f32 {
        x.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_on_first_occurrence() {
        let xs: Vec<Q6_10> = [1, 7, 7, -3].iter().map(|&r| Q6_10::from_raw(r)).collect();
        assert_eq!(argmax(&xs), 1, "ties go to the first occurrence");
        assert_eq!(argmax::<10>(&[]), 0, "empty slice maps to 0");
        let neg: Vec<Q6_10> = [-5, -2, -9].iter().map(|&r| Q6_10::from_raw(r)).collect();
        assert_eq!(argmax(&neg), 1);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Q6_10::ZERO.to_f32(), 0.0);
        assert_eq!(Q6_10::ONE.to_f32(), 1.0);
        assert_eq!(Q6_10::EPSILON.to_f32(), f32::powi(2.0, -10));
        assert!(Q6_10::MAX.to_f32() < 32.0);
        assert_eq!(Q6_10::MIN.to_f32(), -32.0);
    }

    #[test]
    fn from_f32_rounds_to_nearest() {
        // 0.30029296875 * 1024 = 307.5 exactly -> ties to even -> 308.
        let x = Q6_10::from_f32(307.5 / 1024.0);
        assert_eq!(x.raw(), 308);
        // 306.5 -> even -> 306.
        let y = Q6_10::from_f32(306.5 / 1024.0);
        assert_eq!(y.raw(), 306);
        // Plain nearest.
        assert_eq!(Q6_10::from_f32(0.25).raw(), 256);
        assert_eq!(Q6_10::from_f32(-0.25).raw(), -256);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Q6_10::from_f32(1.0e9), Q6_10::MAX);
        assert_eq!(Q6_10::from_f32(-1.0e9), Q6_10::MIN);
        assert_eq!(Q6_10::from_f32(f32::INFINITY), Q6_10::MAX);
        assert_eq!(Q6_10::from_f32(f32::NEG_INFINITY), Q6_10::MIN);
        assert_eq!(Q6_10::from_f32(f32::NAN), Q6_10::ZERO);
    }

    #[test]
    fn add_saturates_at_both_rails() {
        assert_eq!(Q6_10::MAX + Q6_10::ONE, Q6_10::MAX);
        assert_eq!(Q6_10::MIN + (-Q6_10::ONE), Q6_10::MIN);
        assert_eq!(Q6_10::MIN - Q6_10::ONE, Q6_10::MIN);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!((-Q6_10::MIN).raw(), i16::MAX);
    }

    #[test]
    fn wide_mul_is_exact() {
        let a = Q6_10::from_raw(-32768);
        let b = Q6_10::from_raw(-32768);
        assert_eq!(a.wide_mul(b), 1 << 30);
        let c = Q6_10::from_f32(1.5);
        let d = Q6_10::from_f32(2.0);
        assert_eq!(c.wide_mul(d), 3 << 20);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        assert_eq!(Q6_10::from_f32(-3.0).relu(), Q6_10::ZERO);
        let p = Q6_10::from_f32(3.0);
        assert_eq!(p.relu(), p);
        assert_eq!(Q6_10::ZERO.relu(), Q6_10::ZERO);
    }

    #[test]
    fn predicates() {
        assert!(Q6_10::ZERO.is_zero());
        assert!(!Q6_10::EPSILON.is_zero());
        assert!(Q6_10::EPSILON.is_positive());
        assert!(!Q6_10::ZERO.is_positive());
        assert!(!(-Q6_10::EPSILON).is_positive());
    }

    #[test]
    fn formatting_is_nonempty() {
        assert_eq!(format!("{:x}", Q6_10::from_raw(-1)), "ffff");
        assert!(!format!("{:?}", Q6_10::ZERO).is_empty());
        assert_eq!(format!("{}", Q6_10::ONE), "1");
    }
}
