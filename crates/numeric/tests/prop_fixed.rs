//! Property-based tests for the fixed-point substrate.

use proptest::prelude::*;
use sparsenn_numeric::{Accumulator, Fixed, Q6_10};

proptest! {
    /// Quantizing any in-range float and reading it back stays within half
    /// an ulp of the original.
    #[test]
    fn quantize_roundtrip_within_half_ulp(x in -31.9f32..31.9) {
        let q = Q6_10::from_f32(x);
        let ulp = f32::powi(2.0, -10);
        prop_assert!((q.to_f32() - x).abs() <= ulp / 2.0 + f32::EPSILON);
    }

    /// Values already on the Q6.10 grid quantize losslessly.
    #[test]
    fn grid_points_are_fixed_points(raw in i16::MIN..=i16::MAX) {
        let q = Q6_10::from_raw(raw);
        prop_assert_eq!(Q6_10::from_f32(q.to_f32()), q);
    }

    /// Saturating addition is commutative and never panics.
    #[test]
    fn add_commutes(a in any::<i16>(), b in any::<i16>()) {
        let x = Q6_10::from_raw(a);
        let y = Q6_10::from_raw(b);
        prop_assert_eq!(x + y, y + x);
    }

    /// Saturating addition is monotone in each argument.
    #[test]
    fn add_is_monotone(a in any::<i16>(), b in any::<i16>(), c in any::<i16>()) {
        let (lo, hi) = if b <= c { (b, c) } else { (c, b) };
        let x = Q6_10::from_raw(a);
        prop_assert!(x + Q6_10::from_raw(lo) <= x + Q6_10::from_raw(hi));
    }

    /// Wide multiplication agrees with f64 arithmetic exactly.
    #[test]
    fn wide_mul_matches_f64(a in any::<i16>(), b in any::<i16>()) {
        let p = Q6_10::from_raw(a).wide_mul(Q6_10::from_raw(b));
        prop_assert_eq!(i64::from(p), i64::from(a) * i64::from(b));
    }

    /// Accumulation is order independent: any permutation of MACs produces a
    /// bit-identical accumulator. This is the invariant the out-of-order NoC
    /// delivery relies on.
    #[test]
    fn accumulation_is_order_independent(
        pairs in prop::collection::vec((any::<i16>(), any::<i16>()), 0..64),
        seed in any::<u64>(),
    ) {
        let mut fwd = Accumulator::new();
        for &(w, a) in &pairs {
            fwd.mac(Q6_10::from_raw(w), Q6_10::from_raw(a));
        }
        // Deterministic pseudo-shuffle driven by the seed.
        let mut shuffled = pairs.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut rev = Accumulator::new();
        for &(w, a) in &shuffled {
            rev.mac(Q6_10::from_raw(w), Q6_10::from_raw(a));
        }
        prop_assert_eq!(fwd, rev);
    }

    /// Merging split accumulators equals flat accumulation (router ACC stage
    /// correctness at the arithmetic level).
    #[test]
    fn merge_equals_flat(
        pairs in prop::collection::vec((any::<i16>(), any::<i16>()), 0..64),
        split in 0usize..64,
    ) {
        let split = split.min(pairs.len());
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        let mut flat = Accumulator::new();
        for (i, &(w, a)) in pairs.iter().enumerate() {
            let (w, a) = (Q6_10::from_raw(w), Q6_10::from_raw(a));
            if i < split { left.mac(w, a) } else { right.mac(w, a) }
            flat.mac(w, a);
        }
        left.merge(right);
        prop_assert_eq!(left, flat);
    }

    /// Writeback never panics and always lands inside the i16 range.
    #[test]
    fn writeback_in_range(sum in any::<i64>()) {
        let f: Fixed<10> = Accumulator::from_raw(sum).to_fixed();
        // Either saturated or within one ulp of sum / 2^10.
        prop_assert!(f.raw() == i16::MAX || f.raw() == i16::MIN ||
            ((i64::from(f.raw()) << 10) - sum).abs() <= 1 << 9);
    }

    /// ReLU output is always non-negative and idempotent.
    #[test]
    fn relu_invariants(raw in any::<i16>()) {
        let x = Q6_10::from_raw(raw);
        let r = x.relu();
        prop_assert!(r.raw() >= 0);
        prop_assert_eq!(r.relu(), r);
    }
}
