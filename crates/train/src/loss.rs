//! Softmax cross-entropy loss.
//!
//! The paper's Algorithm 1 only requires `δ⁽ᴸ⁾ = ∂ℓ/∂a⁽ᴸ⁾` "knowing `a⁽ᴸ⁾`
//! and `a*`"; for 10-class digit classification the standard choice is a
//! softmax cross-entropy on the linear output layer, whose gradient is the
//! famously simple `softmax(logits) − onehot(label)`.

use sparsenn_linalg::vector::softmax;

/// Cross-entropy loss `−log softmax(logits)[label]`.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy(logits: &[f32], label: usize) -> f32 {
    assert!(label < logits.len(), "label out of range");
    let p = softmax(logits);
    -p[label].max(1e-12).ln()
}

/// Gradient of [`cross_entropy`] with respect to the logits:
/// `softmax(logits) − onehot(label)`.
///
/// # Panics
///
/// Panics if `label` is out of range.
pub fn cross_entropy_grad(logits: &[f32], label: usize) -> Vec<f32> {
    assert!(label < logits.len(), "label out of range");
    let mut g = softmax(logits);
    g[label] -= 1.0;
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_low_when_confidently_correct() {
        let confident = cross_entropy(&[10.0, -10.0], 0);
        let wrong = cross_entropy(&[10.0, -10.0], 1);
        assert!(confident < 1e-3);
        assert!(wrong > 5.0);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let g = cross_entropy_grad(&[1.0, 2.0, 3.0], 1);
        assert!((g.iter().sum::<f32>()).abs() < 1e-6);
        assert!(g[1] < 0.0, "true-class gradient must be negative");
    }

    #[test]
    fn gradient_matches_numerical_derivative() {
        let logits = [0.3f32, -1.2, 0.8, 0.1];
        let label = 2;
        let g = cross_entropy_grad(&logits, label);
        let eps = 1e-3f32;
        for k in 0..logits.len() {
            let mut plus = logits;
            plus[k] += eps;
            let mut minus = logits;
            minus[k] -= eps;
            let num = (cross_entropy(&plus, label) - cross_entropy(&minus, label)) / (2.0 * eps);
            assert!(
                (num - g[k]).abs() < 1e-3,
                "dim {k}: analytic {} vs numeric {num}",
                g[k]
            );
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        cross_entropy(&[0.0, 1.0], 5);
    }
}
