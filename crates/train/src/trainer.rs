//! Shared SGD driver: epochs, shuffling, learning-rate decay, history.

use rand::seq::SliceRandom;
use sparsenn_datasets::Dataset;
use sparsenn_linalg::init::seeded_rng;

/// Hyperparameters shared by all three training algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Initial SGD learning rate η.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// ℓ1 regularization factor λ on the predictor output (Eq. (4));
    /// only the end-to-end algorithm uses it.
    pub lambda: f32,
    /// Seed for weight initialization and epoch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 0.02,
            lr_decay: 0.95,
            lambda: 2e-4,
            seed: 0x5ba2_5e44,
        }
    }
}

/// Statistics recorded after each epoch.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Learning rate used during the epoch.
    pub lr: f32,
}

/// Training history (one entry per epoch).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct History {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// Final training loss, or `NaN` if no epoch ran.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.train_loss)
    }
}

/// Runs the generic per-sample SGD loop.
///
/// `step(image, label, lr)` performs one forward/backward/update step and
/// returns the sample loss. Sample order is reshuffled every epoch with a
/// deterministic RNG derived from `config.seed`.
pub fn run_epochs(
    data: &Dataset,
    config: &TrainConfig,
    mut step: impl FnMut(&[f32], usize, f32) -> f32,
) -> History {
    let mut history = History::default();
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = seeded_rng(config.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut lr = config.lr;
    for _epoch in 0..config.epochs {
        indices.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        for &i in &indices {
            loss_sum += f64::from(step(data.image(i), data.label(i) as usize, lr));
        }
        let mean = if data.is_empty() {
            0.0
        } else {
            (loss_sum / data.len() as f64) as f32
        };
        history.epochs.push(EpochStats {
            train_loss: mean,
            lr,
        });
        lr *= config.lr_decay;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_datasets::{DatasetKind, DatasetSpec};

    fn data() -> Dataset {
        DatasetSpec {
            kind: DatasetKind::Basic,
            train: 12,
            test: 0,
            seed: 5,
        }
        .generate()
        .train
    }

    #[test]
    fn runs_expected_number_of_steps() {
        let d = data();
        let mut steps = 0usize;
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let h = run_epochs(&d, &cfg, |_, _, _| {
            steps += 1;
            1.0
        });
        assert_eq!(steps, 36);
        assert_eq!(h.epochs.len(), 3);
        assert_eq!(h.final_loss(), 1.0);
    }

    #[test]
    fn lr_decays_per_epoch() {
        let d = data();
        let cfg = TrainConfig {
            epochs: 2,
            lr: 1.0,
            lr_decay: 0.5,
            ..TrainConfig::default()
        };
        let h = run_epochs(&d, &cfg, |_, _, _| 0.0);
        assert_eq!(h.epochs[0].lr, 1.0);
        assert_eq!(h.epochs[1].lr, 0.5);
    }

    #[test]
    fn shuffling_is_deterministic_per_seed() {
        let d = data();
        let order = |seed| {
            let mut seen = Vec::new();
            let cfg = TrainConfig {
                epochs: 1,
                seed,
                ..TrainConfig::default()
            };
            run_epochs(&d, &cfg, |img, _, _| {
                // Whole-image signature: any single pixel can be blank in
                // every sample of a tiny synthetic set.
                seen.push(img.iter().map(|p| u64::from(p.to_bits())).sum::<u64>());
                0.0
            });
            seen
        };
        assert_eq!(order(1), order(1));
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn empty_history_loss_is_nan() {
        assert!(History::default().final_loss().is_nan());
    }
}
