//! The NO-UV baseline: plain backprop, no predictor.

use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::trainer::{run_epochs, History, TrainConfig};
use sparsenn_datasets::SplitDataset;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_linalg::vector;
use sparsenn_model::Mlp;

/// One plain SGD step on an MLP (ReLU hidden layers, linear + softmax-CE
/// output). Returns the sample loss before the update.
pub fn sgd_step(mlp: &mut Mlp, x: &[f32], label: usize, lr: f32) -> f32 {
    let acts = mlp.forward(x);
    let loss = cross_entropy(acts.logits(), label);

    // γ at the linear output layer.
    let mut gamma = cross_entropy_grad(acts.logits(), label);
    for l in (0..mlp.num_layers()).rev() {
        // δ for the layer below, before this layer's weights change.
        let delta = mlp.layers()[l].w().matvec_t(&gamma);
        mlp.layers_mut()[l]
            .w_mut()
            .add_scaled_outer(-lr, &gamma, &acts.post[l]);
        if l > 0 {
            gamma = vector::hadamard(&delta, &vector::relu_mask(&acts.pre[l - 1]));
        }
    }
    loss
}

/// Trains a plain MLP — the paper's "NO UV" rows in Fig. 6 and Table I.
///
/// # Example
///
/// ```
/// use sparsenn_datasets::{DatasetKind, DatasetSpec};
/// use sparsenn_train::{no_uv, TrainConfig};
/// let split = DatasetSpec { kind: DatasetKind::Basic, train: 20, test: 10, seed: 2 }.generate();
/// let (mlp, _) = no_uv::train(&[784, 8, 10], &split, &TrainConfig { epochs: 1, ..Default::default() });
/// assert_eq!(mlp.num_layers(), 2);
/// ```
pub fn train(dims: &[usize], split: &SplitDataset, config: &TrainConfig) -> (Mlp, History) {
    let mut rng = seeded_rng(config.seed);
    let mut mlp = Mlp::random(dims, &mut rng);
    let history = run_epochs(&split.train, config, |x, label, lr| {
        sgd_step(&mut mlp, x, label, lr)
    });
    (mlp, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::end_to_end::{compute_gradients, PredictorActivation};
    use sparsenn_datasets::{DatasetKind, DatasetSpec};
    use sparsenn_model::stats::test_error_rate_plain;
    use sparsenn_model::PredictedNetwork;

    #[test]
    fn step_reduces_loss_on_repeated_sample() {
        let mut mlp = Mlp::random(&[6, 10, 4], &mut seeded_rng(1));
        let x = vec![0.4f32, 0.0, 0.9, 0.2, 0.7, 0.1];
        let first = sgd_step(&mut mlp, &x, 3, 0.05);
        let mut last = first;
        for _ in 0..50 {
            last = sgd_step(&mut mlp, &x, 3, 0.05);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn learns_tiny_dataset_beyond_chance() {
        let split = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 200,
            test: 100,
            seed: 9,
        }
        .generate();
        let cfg = TrainConfig {
            epochs: 6,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let (mlp, _) = train(&[784, 32, 10], &split, &cfg);
        let ter = test_error_rate_plain(&mlp, &split.test);
        assert!(ter < 55.0, "TER {ter}%");
    }

    /// With a predictor whose output is identically +1 (gating nothing),
    /// the end-to-end W gradients must coincide with plain backprop — the
    /// two algorithms share their W path.
    #[test]
    fn w_gradients_agree_with_end_to_end_when_predictor_is_transparent() {
        let mut rng = seeded_rng(5);
        let mlp = Mlp::random(&[5, 8, 3], &mut rng);
        // Build a predictor forced to emit large positive scores: U=0 ⇒ s=0…
        // that's sign(0)=0 which gates everything. Instead use a one-column
        // U of big positives and V=0 … also zero. So instead: U has one
        // column of 1s, V has one row of 0s, then hand-set s by making V's
        // row all zero and biasing through… there is no bias, so instead we
        // use inputs ≥ 0 and U, V all-positive: scores > 0 whenever a has
        // any positive entry.
        let u = sparsenn_linalg::Matrix::from_fn(8, 1, |_, _| 1.0);
        let v = sparsenn_linalg::Matrix::from_fn(1, 5, |_, _| 1.0);
        let net = PredictedNetwork::new(mlp.clone(), vec![sparsenn_model::Predictor::new(u, v)]);
        let x = vec![0.3f32, 0.9, 0.2, 0.5, 0.4]; // all positive ⇒ p = +1 everywhere
        let label = 2;

        let g = compute_gradients(&net, &x, label, 0.0, PredictorActivation::Sign);

        // Plain backprop gradients via a single sgd_step with lr 1 on a clone.
        let mut plain = mlp.clone();
        sgd_step(&mut plain, &x, label, 1.0);
        for l in 0..mlp.num_layers() {
            let before = mlp.layers()[l].w();
            let after = plain.layers()[l].w();
            let manual_grad = before.sub(after); // lr=1 ⇒ grad = before - after
            let diff = manual_grad.sub(&g.dw[l]).frobenius_norm();
            assert!(diff < 1e-4, "layer {l} gradient mismatch {diff}");
        }
    }
}
