//! The truncated-SVD predictor baseline (Davis et al. \[11\] / LRADNN \[12\]).
//!
//! `W` is trained by backprop through the predictor-gated forward pass, but
//! the predictor factors are **not** trained: at the start of every epoch
//! they are recomputed as the rank-`r` truncated SVD of the current `W`
//! (`U⁽ˡ⁾`, `V⁽ˡ⁾` are the leading singular vectors, with the singular
//! values split symmetrically between the factors).
//!
//! This is the scheme the paper criticizes: the SVD minimizes Frobenius
//! reconstruction error, which is *not* the same objective as predicting
//! the sign of `W·a` (0.1 and −0.1 are close in Frobenius norm but give
//! opposite predictions), and the once-per-epoch update cannot react to
//! the loss. Fig. 6 and Table I quantify the resulting gap.

use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::trainer::{History, TrainConfig};
use rand::seq::SliceRandom;
use sparsenn_datasets::SplitDataset;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_linalg::truncated::truncated_svd;
use sparsenn_linalg::vector;
use sparsenn_model::{Mlp, PredictedNetwork, Predictor};

/// Refreshes every predictor from the truncated SVD of its layer's current
/// weights (the once-per-epoch step of the baseline).
pub fn refresh_predictors(net: &mut PredictedNetwork, rank: usize, seed: u64) {
    for l in 0..net.predictors().len() {
        let w = net.mlp().layers()[l].w().clone();
        let svd = truncated_svd(&w, rank, seed ^ (l as u64).wrapping_mul(0x9E37_79B9));
        let (u, v) = svd.predictor_factors();
        net.predictors_mut()[l] = Predictor::new(u, v);
    }
}

/// One SGD step on `W` only, through the activeness-gated forward pass
/// (the predictor is frozen). Returns the sample loss.
///
/// Gating uses the inference semantics (`p > 0` computes the row, else the
/// activation is zero) — see the `end_to_end` module docs for why the
/// literal `±1` reading destabilizes training.
pub fn sgd_step_w_only(net: &mut PredictedNetwork, x: &[f32], label: usize, lr: f32) -> f32 {
    // Forward with gating, remembering z and p per hidden layer.
    let hidden = net.predictors().len();
    let mut a_list = vec![x.to_vec()];
    let mut z_list = Vec::with_capacity(hidden);
    let mut p_list = Vec::with_capacity(hidden);
    for l in 0..hidden {
        let a = a_list.last().expect("nonempty");
        let z = net.mlp().layers()[l].preact(a);
        let p: Vec<f32> = net.predictors()[l]
            .scores(a)
            .iter()
            .map(|&s| if s > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let gated = vector::hadamard(&p, &vector::relu(&z));
        z_list.push(z);
        p_list.push(p);
        a_list.push(gated);
    }
    let logits = net.mlp().layers()[hidden].preact(a_list.last().expect("nonempty"));
    let loss = cross_entropy(&logits, label);

    // Backward through W only.
    let mut gamma = cross_entropy_grad(&logits, label);
    for l in (0..net.mlp().num_layers()).rev() {
        let delta = net.mlp().layers()[l].w().matvec_t(&gamma);
        net.mlp_mut().layers_mut()[l]
            .w_mut()
            .add_scaled_outer(-lr, &gamma, &a_list[l]);
        if l > 0 {
            let da_ori = vector::hadamard(&delta, &p_list[l - 1]);
            gamma = vector::hadamard(&da_ori, &vector::relu_mask(&z_list[l - 1]));
        }
    }
    loss
}

/// Trains the SVD-predictor baseline.
///
/// Epoch structure: refresh `U, V` from SVD(`W`), then run one shuffled
/// pass of W-only SGD. A final refresh follows the last epoch so the
/// returned predictor matches the returned weights.
///
/// # Example
///
/// ```
/// use sparsenn_datasets::{DatasetKind, DatasetSpec};
/// use sparsenn_train::{svd_baseline, TrainConfig};
/// let split = DatasetSpec { kind: DatasetKind::Basic, train: 20, test: 10, seed: 2 }.generate();
/// let (net, _) = svd_baseline::train(&[784, 8, 10], 2, &split, &TrainConfig { epochs: 1, ..Default::default() });
/// assert_eq!(net.predictors()[0].rank(), 2);
/// ```
pub fn train(
    dims: &[usize],
    rank: usize,
    split: &SplitDataset,
    config: &TrainConfig,
) -> (PredictedNetwork, History) {
    let mut rng = seeded_rng(config.seed);
    let mlp = Mlp::random(dims, &mut rng);
    // Rank placeholder predictors; immediately replaced by the SVD refresh.
    let mut net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
    refresh_predictors(&mut net, rank, config.seed);

    let mut history = History::default();
    let mut indices: Vec<usize> = (0..split.train.len()).collect();
    let mut shuffle_rng = seeded_rng(config.seed ^ 0x51d3);
    let mut lr = config.lr;
    for epoch in 0..config.epochs {
        refresh_predictors(&mut net, rank, config.seed.wrapping_add(epoch as u64));
        indices.shuffle(&mut shuffle_rng);
        let mut loss_sum = 0.0f64;
        for &i in &indices {
            loss_sum += f64::from(sgd_step_w_only(
                &mut net,
                split.train.image(i),
                split.train.label(i) as usize,
                lr,
            ));
        }
        let mean = if indices.is_empty() {
            0.0
        } else {
            (loss_sum / indices.len() as f64) as f32
        };
        history.epochs.push(crate::trainer::EpochStats {
            train_loss: mean,
            lr,
        });
        lr *= config.lr_decay;
    }
    refresh_predictors(
        &mut net,
        rank,
        config.seed.wrapping_add(config.epochs as u64),
    );
    (net, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_datasets::{DatasetKind, DatasetSpec};
    use sparsenn_model::stats::{test_error_rate, EvalMode};

    #[test]
    fn refresh_approximates_weights() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::random(&[12, 16, 4], &mut rng);
        let mut net = PredictedNetwork::with_random_predictors(mlp, 8, &mut rng);
        refresh_predictors(&mut net, 8, 7);
        let w = net.mlp().layers()[0].w();
        let approx = net.predictors()[0].u().matmul(net.predictors()[0].v());
        let rel = w.sub(&approx).frobenius_norm() / w.frobenius_norm();
        // Rank 8 of a random 16x12 keeps most of the energy.
        assert!(rel < 0.75, "relative error {rel}");
    }

    #[test]
    fn higher_rank_refreshes_are_more_accurate() {
        let mut rng = seeded_rng(2);
        let mlp = Mlp::random(&[12, 16, 4], &mut rng);
        let rel_for = |rank: usize| {
            let mut net =
                PredictedNetwork::with_random_predictors(mlp.clone(), rank, &mut seeded_rng(3));
            refresh_predictors(&mut net, rank, 7);
            let w = net.mlp().layers()[0].w();
            let approx = net.predictors()[0].u().matmul(net.predictors()[0].v());
            w.sub(&approx).frobenius_norm() / w.frobenius_norm()
        };
        assert!(rel_for(2) > rel_for(10));
    }

    #[test]
    fn training_beats_chance() {
        let split = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 200,
            test: 100,
            seed: 5,
        }
        .generate();
        let cfg = TrainConfig {
            epochs: 6,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let (net, _) = train(&[784, 32, 10], 16, &split, &cfg);
        let ter = test_error_rate(&net, &split.test, EvalMode::Predicted);
        assert!(ter < 60.0, "TER {ter}%");
    }

    #[test]
    fn w_step_leaves_predictor_untouched() {
        let mut rng = seeded_rng(6);
        let mlp = Mlp::random(&[6, 8, 3], &mut rng);
        let mut net = PredictedNetwork::with_random_predictors(mlp, 2, &mut rng);
        let before = net.predictors()[0].clone();
        sgd_step_w_only(&mut net, &[0.5, 0.2, 0.8, 0.1, 0.9, 0.3], 1, 0.05);
        assert_eq!(&before, &net.predictors()[0]);
    }
}
