//! Algorithm 1: end-to-end training of the sparsity predictor.
//!
//! The predictor factors `U, V` and the weights `W` are all trained by
//! backpropagation. The non-differentiable `sign` of Eq. (2) is handled by
//! the **straight-through estimator** of Courbariaux et al.: the forward
//! pass uses `sign(x)`, the backward pass pretends the function was the
//! piece-wise linear `hardtanh(x) = max(−1, min(1, x))`, whose derivative
//! is `1` on `|x| < 1` and `0` elsewhere.
//!
//! The per-sample gradients follow the paper exactly:
//!
//! ```text
//! ∂ℓ/∂p⁽ˡ⁺¹⁾ = δ⁽ˡ⁺¹⁾ ∘ a_ori⁽ˡ⁺¹⁾  + λ·sign(p⁽ˡ⁺¹⁾)      (Eq. 4)
//! ∂ℓ/∂a_ori⁽ˡ⁺¹⁾ = δ⁽ˡ⁺¹⁾ ∘ p⁽ˡ⁺¹⁾
//! θ⁽ˡ⁾ = ∂ℓ/∂(U V a) = ∂ℓ/∂p⁽ˡ⁺¹⁾ ∘ 1_{|U V a| < 1}
//! γ⁽ˡ⁾ = ∂ℓ/∂(W a)   = ∂ℓ/∂a_ori⁽ˡ⁺¹⁾ ∘ 1_{W a > 0}
//! δ⁽ˡ⁾ = (W⁽ˡ⁾)ᵀ γ⁽ˡ⁾
//! ∂ℓ/∂U = θ (V a)ᵀ,  ∂ℓ/∂V = (Uᵀθ) aᵀ,  ∂ℓ/∂W = γ aᵀ
//! ```
//!
//! Note that — exactly as written in the paper — the error signal `δ⁽ˡ⁾`
//! flows back only through `W`; the predictor branch contributes gradients
//! to `U, V` but not to earlier layers.
//!
//! # The ℓ1 regularizer, precisely
//!
//! The paper regularizes "the ℓ1 norm of the sparsity predictor `p⁽ˡ⁾`"
//! with gradient `λ·sign(p⁽ˡ⁺¹⁾)` (Eq. (4)). Read literally over
//! `p ∈ {−1, +1}`, `‖p‖₁` is the constant `m` and the symmetric gradient
//! merely shrinks every score toward zero — it cannot raise sparsity above
//! the ~50 % a random predictor already has. Read over the activeness
//! indicator `p ∈ {0, 1}` (the hardware's view: a 1-bit "compute this row"
//! flag), `‖p‖₁` is the **number of active rows** and its STE gradient
//! `λ·1_{p>0}` pushes only *active* scores down — which is the behaviour
//! the paper reports (larger λ ⇒ larger predicted sparsity, slight TER
//! cost). This implementation uses the indicator reading; the paper-vs-
//! measured notes in `EXPERIMENTS.md` and `DESIGN.md` §7 record the
//! interpretation.

use crate::loss::{cross_entropy, cross_entropy_grad};
use crate::trainer::{run_epochs, History, TrainConfig};
use sparsenn_datasets::SplitDataset;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_linalg::{vector, Matrix};
use sparsenn_model::{Mlp, PredictedNetwork};

/// Forward activation used for the predictor output.
///
/// [`Indicator`](PredictorActivation::Indicator) is the default used by
/// [`train`]: `p = 1_{x>0}` gates exactly like the inference hardware
/// (compute-or-zero). The paper's literal `p = sign(x) ∈ {−1, +1}`
/// ([`Sign`](PredictorActivation::Sign)) *negates* the activation of every
/// false-negative prediction during training, which we measured to derail
/// learning on dense inputs and deep stacks (see DESIGN.md §7); it is kept
/// for fidelity experiments. The continuous
/// [`HardTanh`](PredictorActivation::HardTanh) surrogate makes the
/// straight-through gradients *exact*, which the gradient-check tests
/// exploit. All three share the same backward formulas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PredictorActivation {
    /// `p = 1_{x>0}` — activeness gating, train/inference consistent.
    #[default]
    Indicator,
    /// `p = sign(x)` — the paper's Eq. (2), read literally.
    Sign,
    /// `p = max(−1, min(1, x))` — the STE's implicit surrogate.
    HardTanh,
}

fn apply_activation(xs: &[f32], act: PredictorActivation) -> Vec<f32> {
    match act {
        PredictorActivation::Indicator => xs
            .iter()
            .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
            .collect(),
        PredictorActivation::Sign => vector::sign(xs),
        PredictorActivation::HardTanh => xs.iter().map(|&v| v.clamp(-1.0, 1.0)).collect(),
    }
}

/// Everything the forward pass must remember for backprop.
#[derive(Clone, Debug)]
struct ForwardTape {
    /// `a[l]`: gated input of layer `l` (`a[0]` = network input).
    a: Vec<Vec<f32>>,
    /// `z[l] = W a` for hidden layers.
    z: Vec<Vec<f32>>,
    /// `s[l] = U V a` predictor pre-activation per hidden layer.
    s: Vec<Vec<f32>>,
    /// `p[l]` predictor output per hidden layer.
    p: Vec<Vec<f32>>,
    /// `V a` intermediate per hidden layer (needed for ∂ℓ/∂U).
    va: Vec<Vec<f32>>,
    /// Classifier logits.
    logits: Vec<f32>,
}

fn forward_tape(net: &PredictedNetwork, x: &[f32], act: PredictorActivation) -> ForwardTape {
    let hidden = net.predictors().len();
    let mut tape = ForwardTape {
        a: vec![x.to_vec()],
        z: Vec::with_capacity(hidden),
        s: Vec::with_capacity(hidden),
        p: Vec::with_capacity(hidden),
        va: Vec::with_capacity(hidden),
        logits: Vec::new(),
    };
    for l in 0..hidden {
        let a = tape.a.last().expect("nonempty").clone();
        let layer = &net.mlp().layers()[l];
        let z = layer.preact(&a);
        let va = net.predictors()[l].v_scores(&a);
        let s = net.predictors()[l].u().matvec(&va);
        let p = apply_activation(&s, act);
        let a_next = vector::hadamard(&p, &vector::relu(&z));
        tape.a.push(a_next);
        tape.z.push(z);
        tape.s.push(s);
        tape.p.push(p);
        tape.va.push(va);
    }
    let last = net.mlp().layers().last().expect("at least one layer");
    tape.logits = last.preact(tape.a.last().expect("nonempty"));
    tape
}

/// Total training loss for one sample: cross entropy plus the ℓ1 predictor
/// regularizer `λ·Σ_l ‖p⁽ˡ⁾‖₁` of Eq. (4).
pub fn sample_loss(
    net: &PredictedNetwork,
    x: &[f32],
    label: usize,
    lambda: f32,
    act: PredictorActivation,
) -> f32 {
    let tape = forward_tape(net, x, act);
    cross_entropy(&tape.logits, label) + lambda * active_l1(&tape.p)
}

/// The activeness-ℓ1 regularizer `Σ_l Σ_i max(p⁽ˡ⁾_i, 0)` (see the module
/// docs for why the positive part is the right reading of Eq. (4)).
fn active_l1(p_layers: &[Vec<f32>]) -> f32 {
    p_layers
        .iter()
        .map(|p| p.iter().map(|v| v.max(0.0)).sum::<f32>())
        .sum()
}

/// Per-layer gradients of [`sample_loss`].
#[derive(Clone, Debug)]
pub struct Gradients {
    /// `∂ℓ/∂W` per weight layer.
    pub dw: Vec<Matrix>,
    /// `∂ℓ/∂U` per hidden layer.
    pub du: Vec<Matrix>,
    /// `∂ℓ/∂V` per hidden layer.
    pub dv: Vec<Matrix>,
}

/// The backward terms shared by gradient assembly and the in-place SGD
/// step: for each hidden layer, `(γ, θ, Uᵀθ)`.
struct BackwardTerms {
    gamma: Vec<Vec<f32>>,
    theta: Vec<Vec<f32>>,
    ut_theta: Vec<Vec<f32>>,
    /// γ of the final linear layer (= δ⁽ᴸ⁾).
    delta_out: Vec<f32>,
}

fn backward_terms(
    net: &PredictedNetwork,
    tape: &ForwardTape,
    label: usize,
    lambda: f32,
) -> BackwardTerms {
    let hidden = net.predictors().len();
    let delta_out = cross_entropy_grad(&tape.logits, label);

    // δ at the output of hidden layer `l` (i.e. ∂ℓ/∂a[l+1]).
    let last = net.mlp().layers().last().expect("nonempty");
    let mut delta = last.w().matvec_t(&delta_out);

    let mut gamma = vec![Vec::new(); hidden];
    let mut theta = vec![Vec::new(); hidden];
    let mut ut_theta = vec![Vec::new(); hidden];

    for l in (0..hidden).rev() {
        let a_ori = vector::relu(&tape.z[l]);
        // ∂ℓ/∂p = δ ∘ a_ori + λ·1_{p>0} (activeness reading of Eq. (4)).
        let mut dp = vector::hadamard(&delta, &a_ori);
        let active: Vec<f32> = tape.p[l]
            .iter()
            .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
            .collect();
        vector::axpy(lambda, &active, &mut dp);
        // ∂ℓ/∂a_ori = δ ∘ p
        let da_ori = vector::hadamard(&delta, &tape.p[l]);
        // θ = dp ∘ 1_{|s|<1}
        let th = vector::hadamard(&dp, &vector::ste_mask(&tape.s[l]));
        // γ = da_ori ∘ 1_{z>0}
        let gm = vector::hadamard(&da_ori, &vector::relu_mask(&tape.z[l]));
        // δ for the next-lower layer flows only through W (paper Alg. 1).
        delta = net.mlp().layers()[l].w().matvec_t(&gm);
        ut_theta[l] = net.predictors()[l].u().matvec_t(&th);
        gamma[l] = gm;
        theta[l] = th;
    }
    BackwardTerms {
        gamma,
        theta,
        ut_theta,
        delta_out,
    }
}

/// Computes the full gradient set for one sample (used by the gradient
/// checks and by anyone wanting batched optimizers).
pub fn compute_gradients(
    net: &PredictedNetwork,
    x: &[f32],
    label: usize,
    lambda: f32,
    act: PredictorActivation,
) -> Gradients {
    let tape = forward_tape(net, x, act);
    let terms = backward_terms(net, &tape, label, lambda);
    let hidden = net.predictors().len();
    let num_layers = net.mlp().num_layers();

    let mut dw = Vec::with_capacity(num_layers);
    let mut du = Vec::with_capacity(hidden);
    let mut dv = Vec::with_capacity(hidden);
    for l in 0..hidden {
        let layer = &net.mlp().layers()[l];
        let mut w_grad = Matrix::zeros(layer.outputs(), layer.inputs());
        w_grad.add_scaled_outer(1.0, &terms.gamma[l], &tape.a[l]);
        dw.push(w_grad);

        let p = &net.predictors()[l];
        let mut u_grad = Matrix::zeros(p.u().rows(), p.u().cols());
        u_grad.add_scaled_outer(1.0, &terms.theta[l], &tape.va[l]);
        du.push(u_grad);

        let mut v_grad = Matrix::zeros(p.v().rows(), p.v().cols());
        v_grad.add_scaled_outer(1.0, &terms.ut_theta[l], &tape.a[l]);
        dv.push(v_grad);
    }
    let last = net.mlp().layers().last().expect("nonempty");
    let mut w_grad = Matrix::zeros(last.outputs(), last.inputs());
    w_grad.add_scaled_outer(1.0, &terms.delta_out, &tape.a[num_layers - 1]);
    dw.push(w_grad);

    Gradients { dw, du, dv }
}

/// One in-place SGD step (forward, backward, update). Returns the sample
/// loss *before* the update.
pub fn sgd_step(
    net: &mut PredictedNetwork,
    x: &[f32],
    label: usize,
    lr: f32,
    lambda: f32,
    act: PredictorActivation,
) -> f32 {
    let tape = forward_tape(net, x, act);
    let terms = backward_terms(net, &tape, label, lambda);
    let loss = cross_entropy(&tape.logits, label) + lambda * active_l1(&tape.p);

    let hidden = net.predictors().len();
    for l in 0..hidden {
        net.mlp_mut().layers_mut()[l]
            .w_mut()
            .add_scaled_outer(-lr, &terms.gamma[l], &tape.a[l]);
        let (u, v) = net.predictors_mut()[l].factors_mut();
        u.add_scaled_outer(-lr, &terms.theta[l], &tape.va[l]);
        v.add_scaled_outer(-lr, &terms.ut_theta[l], &tape.a[l]);
    }
    let num_layers = net.mlp().num_layers();
    let a_last = tape.a[num_layers - 1].clone();
    net.mlp_mut().layers_mut()[num_layers - 1]
        .w_mut()
        .add_scaled_outer(-lr, &terms.delta_out, &a_last);
    loss
}

/// Trains a predictor-equipped network end to end (Algorithm 1).
///
/// `dims` are the layer sizes (`[784, 1000, 10]` for the paper's 3-layer
/// net), `rank` is the predictor rank `r`.
///
/// # Example
///
/// ```
/// use sparsenn_datasets::{DatasetKind, DatasetSpec};
/// use sparsenn_train::{end_to_end, TrainConfig};
/// let split = DatasetSpec { kind: DatasetKind::Basic, train: 20, test: 10, seed: 2 }.generate();
/// let (net, _) = end_to_end::train(&[784, 8, 10], 2, &split, &TrainConfig { epochs: 1, ..Default::default() });
/// assert_eq!(net.predictors()[0].rank(), 2);
/// ```
pub fn train(
    dims: &[usize],
    rank: usize,
    split: &SplitDataset,
    config: &TrainConfig,
) -> (PredictedNetwork, History) {
    let mut rng = seeded_rng(config.seed);
    let mlp = Mlp::random(dims, &mut rng);
    let mut net = PredictedNetwork::with_random_predictors(mlp, rank, &mut rng);
    // Warm-start the predictor from the truncated SVD of the initial
    // weights so that p ≈ sign(W·a) from the first step. A *random*
    // predictor gates — and, through Algorithm 1's `a = p ∘ a_ori`,
    // negates — half the hidden units arbitrarily, which derails training
    // on dense inputs and deep stacks. The factors are free to move from
    // there; only the starting point comes from the SVD.
    crate::svd_baseline::refresh_predictors(&mut net, rank, config.seed);
    let history = run_epochs(&split.train, config, |x, label, lr| {
        sgd_step(
            &mut net,
            x,
            label,
            lr,
            config.lambda,
            PredictorActivation::Indicator,
        )
    });
    (net, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_datasets::{DatasetKind, DatasetSpec};
    use sparsenn_model::stats::{test_error_rate, EvalMode};

    fn tiny_net(seed: u64) -> PredictedNetwork {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(&[5, 7, 6, 3], &mut rng);
        PredictedNetwork::with_random_predictors(mlp, 2, &mut rng)
    }

    /// A net with a *single* hidden layer: with no predictor above it,
    /// Algorithm 1's gradients (which drop the predictor path from δ) are
    /// the exact gradients of the HardTanh-surrogate loss.
    fn one_hidden_net(seed: u64) -> PredictedNetwork {
        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(&[5, 9, 3], &mut rng);
        PredictedNetwork::with_random_predictors(mlp, 3, &mut rng)
    }

    /// Central-difference gradient check against the HardTanh surrogate,
    /// where the straight-through gradients are exact.
    #[test]
    fn gradients_match_numerical_differentiation() {
        let net = one_hidden_net(11);
        let x: Vec<f32> = (0..5).map(|i| 0.4 + 0.1 * (i as f32 * 1.7).sin()).collect();
        let label = 1usize;
        let lambda = 0.01f32;
        let act = PredictorActivation::HardTanh;
        let grads = compute_gradients(&net, &x, label, lambda, act);
        let eps = 3e-3f32;
        let tol = 2e-2f32;

        // Check a spread of W, U, V entries in every layer.
        for l in 0..net.mlp().num_layers() {
            let (rows, cols) = net.mlp().layers()[l].w().shape();
            for &(i, j) in &[(0usize, 0usize), (rows - 1, cols - 1), (rows / 2, cols / 2)] {
                let mut plus = net.clone();
                let w = plus.mlp_mut().layers_mut()[l].w_mut();
                w.set(i, j, w.get(i, j) + eps);
                let mut minus = net.clone();
                let w = minus.mlp_mut().layers_mut()[l].w_mut();
                w.set(i, j, w.get(i, j) - eps);
                let num = (sample_loss(&plus, &x, label, lambda, act)
                    - sample_loss(&minus, &x, label, lambda, act))
                    / (2.0 * eps);
                let ana = grads.dw[l].get(i, j);
                assert!(
                    (num - ana).abs() < tol * (1.0 + num.abs()),
                    "W[{l}][{i},{j}]: analytic {ana} vs numeric {num}"
                );
            }
        }
        for l in 0..net.predictors().len() {
            for &(i, j) in &[(0usize, 0usize), (2, 1)] {
                // U entry
                let mut plus = net.clone();
                let (u, _) = plus.predictors_mut()[l].factors_mut();
                u.set(i, j, u.get(i, j) + eps);
                let mut minus = net.clone();
                let (u, _) = minus.predictors_mut()[l].factors_mut();
                u.set(i, j, u.get(i, j) - eps);
                let num = (sample_loss(&plus, &x, label, lambda, act)
                    - sample_loss(&minus, &x, label, lambda, act))
                    / (2.0 * eps);
                let ana = grads.du[l].get(i, j);
                assert!(
                    (num - ana).abs() < tol * (1.0 + num.abs()),
                    "U[{l}][{i},{j}]: analytic {ana} vs numeric {num}"
                );
                // V entry
                let mut plus = net.clone();
                let (_, v) = plus.predictors_mut()[l].factors_mut();
                v.set(j, i, v.get(j, i) + eps);
                let mut minus = net.clone();
                let (_, v) = minus.predictors_mut()[l].factors_mut();
                v.set(j, i, v.get(j, i) - eps);
                let num = (sample_loss(&plus, &x, label, lambda, act)
                    - sample_loss(&minus, &x, label, lambda, act))
                    / (2.0 * eps);
                let ana = grads.dv[l].get(j, i);
                assert!(
                    (num - ana).abs() < tol * (1.0 + num.abs()),
                    "V[{l}][{j},{i}]: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn sgd_step_reduces_loss_on_repeated_sample() {
        // Sign mode (the real Algorithm 1): overfitting a single sample
        // must drive its loss down substantially.
        let mut net = one_hidden_net(12);
        let x = vec![0.6f32, 0.1, 0.8, 0.3, 0.5];
        let first = sgd_step(&mut net, &x, 2, 0.05, 0.0, PredictorActivation::Sign);
        let mut last = first;
        for _ in 0..100 {
            last = sgd_step(&mut net, &x, 2, 0.05, 0.0, PredictorActivation::Sign);
        }
        assert!(last < first * 0.5, "loss {first} -> {last} did not drop");
    }

    #[test]
    fn sign_mode_sgd_does_not_increase_loss_over_time() {
        let mut net = tiny_net(13);
        let x = vec![0.6f32, 0.1, 0.8, 0.3, 0.5];
        let first = sgd_step(&mut net, &x, 2, 0.02, 0.0, PredictorActivation::Sign);
        let mut last = first;
        for _ in 0..50 {
            last = sgd_step(&mut net, &x, 2, 0.02, 0.0, PredictorActivation::Sign);
        }
        assert!(last <= first + 1e-3, "loss {first} -> {last} increased");
    }

    #[test]
    fn training_beats_chance_on_tiny_dataset() {
        let split = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 200,
            test: 100,
            seed: 3,
        }
        .generate();
        let cfg = TrainConfig {
            epochs: 6,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let (net, history) = train(&[784, 32, 10], 4, &split, &cfg);
        let ter = test_error_rate(&net, &split.test, EvalMode::Predicted);
        assert!(ter < 55.0, "TER {ter}% is no better than chance (90%)");
        assert!(history.epochs[0].train_loss > history.final_loss());
    }

    #[test]
    fn larger_lambda_increases_predicted_sparsity() {
        let split = DatasetSpec {
            kind: DatasetKind::Basic,
            train: 150,
            test: 50,
            seed: 4,
        }
        .generate();
        let low = TrainConfig {
            epochs: 6,
            lambda: 0.0,
            ..TrainConfig::default()
        };
        let high = TrainConfig {
            epochs: 6,
            lambda: 2e-2,
            ..TrainConfig::default()
        };
        let (net_low, _) = train(&[784, 24, 10], 4, &split, &low);
        let (net_high, _) = train(&[784, 24, 10], 4, &split, &high);
        let s_low = sparsenn_model::stats::predicted_sparsity(&net_low, &split.test)[0];
        let s_high = sparsenn_model::stats::predicted_sparsity(&net_high, &split.test)[0];
        assert!(
            s_high > s_low,
            "λ=2e-2 sparsity {s_high}% should exceed λ=0 sparsity {s_low}%"
        );
    }
}
