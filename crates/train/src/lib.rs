//! Training algorithms for the SparseNN sparsity predictor.
//!
//! Implements the three training regimes compared in the paper's Fig. 6 and
//! Table I:
//!
//! * [`end_to_end`] — the paper's contribution (Algorithm 1): the predictor
//!   factors `U, V` are trained jointly with the weights `W` by
//!   backpropagation, using a **straight-through estimator** through the
//!   `sign` nonlinearity and an **ℓ1 regularizer** on the predictor output
//!   (Eq. (4)) to push the predicted sparsity up.
//! * [`svd_baseline`] — the truncated-SVD predictor of Davis et al. \[11\] /
//!   LRADNN \[12\]: `W` is trained by backprop, while `U, V` are refreshed
//!   *once per epoch* from a truncated SVD of `W` ("the static updating
//!   rule limits the flexibility of the backpropagation").
//! * [`no_uv`] — plain backprop without any predictor (the NO UV rows).
//!
//! All three share the per-sample SGD driver in [`trainer`] and the
//! softmax cross-entropy loss in [`loss`].
//!
//! # Example
//!
//! ```
//! use sparsenn_datasets::{DatasetKind, DatasetSpec};
//! use sparsenn_train::{trainer::TrainConfig, end_to_end};
//!
//! let split = DatasetSpec { kind: DatasetKind::Basic, train: 40, test: 20, seed: 1 }.generate();
//! let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
//! let (net, history) = end_to_end::train(&[784, 16, 10], 4, &split, &cfg);
//! assert_eq!(net.predictors().len(), 1);
//! assert_eq!(history.epochs.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod end_to_end;
pub mod loss;
pub mod no_uv;
pub mod svd_baseline;
pub mod trainer;

pub use trainer::{EpochStats, History, TrainConfig};
