//! Hedged requests and retries: the tail-tolerance half of the front end.
//!
//! A request stuck behind a straggler has two ways out: a **hedge** — a
//! duplicate attempt dispatched after a deadline, first finisher wins,
//! loser cancelled — and a **retry** — re-dispatch after the serving
//! shard fail-stops. Both trade a little extra work for a much shorter
//! tail; the [`HedgeConfig`] bounds how much extra work is allowed.

/// Hedging and retry policy for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Virtual microseconds a request may stay unfinished before a
    /// duplicate attempt is dispatched. `f64::INFINITY` disables hedging.
    pub after_us: f64,
    /// Maximum duplicate attempts per request (0 disables hedging).
    pub max_hedges: usize,
    /// Whether attempts lost to a fail-stop are re-dispatched. When
    /// false, a request whose last live attempt dies counts as failed.
    pub retry_failed: bool,
}

impl HedgeConfig {
    /// No hedging, no retries: every attempt sinks or swims alone.
    pub fn disabled() -> Self {
        Self {
            after_us: f64::INFINITY,
            max_hedges: 0,
            retry_failed: false,
        }
    }

    /// One hedge per request after `after_us`, with fail-stop retries —
    /// the standard tail-tolerant configuration.
    pub fn hedged(after_us: f64) -> Self {
        Self {
            after_us,
            max_hedges: 1,
            retry_failed: true,
        }
    }

    /// Fail-stop retries only, no duplicate attempts.
    pub fn retries_only() -> Self {
        Self {
            after_us: f64::INFINITY,
            max_hedges: 0,
            retry_failed: true,
        }
    }

    /// Whether this configuration ever issues a duplicate attempt.
    pub fn hedging_enabled(&self) -> bool {
        self.max_hedges > 0 && self.after_us.is_finite()
    }

    /// Checks the parameters are simulatable.
    ///
    /// # Errors
    ///
    /// A description of the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.after_us.is_nan() || self.after_us <= 0.0 {
            return Err(format!(
                "hedge deadline must be positive (or +inf to disable), got {}",
                self.after_us
            ));
        }
        Ok(())
    }
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_mean_what_they_say() {
        assert!(!HedgeConfig::disabled().hedging_enabled());
        assert!(!HedgeConfig::disabled().retry_failed);
        assert!(HedgeConfig::hedged(50.0).hedging_enabled());
        assert!(HedgeConfig::hedged(50.0).retry_failed);
        assert!(!HedgeConfig::retries_only().hedging_enabled());
        assert!(HedgeConfig::retries_only().retry_failed);
    }

    #[test]
    fn validation_rejects_non_positive_deadlines() {
        assert!(HedgeConfig::hedged(50.0).validate().is_ok());
        assert!(HedgeConfig::disabled().validate().is_ok());
        assert!(HedgeConfig::hedged(0.0).validate().is_err());
        assert!(HedgeConfig::hedged(f64::NAN).validate().is_err());
        assert!(HedgeConfig::hedged(-5.0).validate().is_err());
    }
}
