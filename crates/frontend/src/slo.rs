//! SLO policy and the policy-combination sweep.
//!
//! An SLO turns a latency distribution into a scalar that can be
//! maximized: **goodput**, completions inside the deadline per second.
//! [`sweep_combos`] runs the cross product of scheduler × admission ×
//! hedging × autoscaling × degrade-batching policies over one workload +
//! fault plan and scores each combination, so picking a front-end
//! configuration is reading a table instead of guessing.

use crate::autoscale::AutoscaleConfig;
use crate::hedge::HedgeConfig;
use crate::metrics::FrontendSummary;
use crate::sim::{simulate_frontend, DegradeBatching, FrontendConfig, FrontendError};
use sparsenn_core::engine::{AdmissionGate, Priority, Scheduler};
use sparsenn_serve::ShardSpec;

/// Per-class end-to-end latency deadlines, µs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// Deadline for [`Priority::High`] requests.
    pub high_us: f64,
    /// Deadline for [`Priority::Low`] requests (usually looser).
    pub low_us: f64,
}

impl SloPolicy {
    /// The deadline for `class`.
    pub fn limit_us(&self, class: Priority) -> f64 {
        match class {
            Priority::High => self.high_us,
            Priority::Low => self.low_us,
        }
    }

    /// Whether a completion at `latency_us` met the `class` deadline.
    pub fn met(&self, class: Priority, latency_us: f64) -> bool {
        latency_us <= self.limit_us(class)
    }

    /// Checks both deadlines are finite and positive.
    ///
    /// # Errors
    ///
    /// A description of the invalid deadline.
    pub fn validate(&self) -> Result<(), String> {
        for (v, class) in [(self.high_us, "high"), (self.low_us, "low")] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!(
                    "{class}-priority SLO must be finite and positive, got {v}"
                ));
            }
        }
        Ok(())
    }
}

/// One scored cell of the policy cross product.
#[derive(Clone, Debug, PartialEq)]
pub struct ComboResult {
    /// Scheduler that ran.
    pub scheduler: String,
    /// Admission gate that ran.
    pub admission: String,
    /// Whether hedging was enabled.
    pub hedging: bool,
    /// Whether autoscaling was enabled.
    pub autoscaling: bool,
    /// Whether the degrade tier was batched.
    pub batched: bool,
    /// The full measurements.
    pub summary: FrontendSummary,
}

impl ComboResult {
    /// A compact `scheduler/admission/±hedge/±scale/±batch` label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.scheduler,
            self.admission,
            if self.hedging { "hedged" } else { "unhedged" },
            if self.autoscaling {
                "autoscaled"
            } else {
                "fixed"
            },
            if self.batched { "batched" } else { "unbatched" },
        )
    }
}

/// Runs every scheduler × admission × hedge × autoscale × degrade-batch
/// combination over the same workload and fault plan (`base` supplies
/// both, plus the SLO and class mix; its own hedge/autoscale/batching
/// fields are overridden by the swept values). Results come back in
/// sweep order — schedulers outermost, batching configs innermost.
///
/// # Errors
///
/// The first [`FrontendError`] any combination hits (the fleet and base
/// config are validated identically for all of them, so in practice:
/// none or all fail).
pub fn sweep_combos(
    fleet: &[ShardSpec],
    base: &FrontendConfig,
    schedulers: &[&dyn Scheduler],
    admissions: &[&dyn AdmissionGate],
    hedges: &[HedgeConfig],
    autoscales: &[Option<AutoscaleConfig>],
    batchings: &[Option<DegradeBatching>],
) -> Result<Vec<ComboResult>, FrontendError> {
    let mut results = Vec::with_capacity(
        schedulers.len() * admissions.len() * hedges.len() * autoscales.len() * batchings.len(),
    );
    for &scheduler in schedulers {
        for &admission in admissions {
            for &hedge in hedges {
                for autoscale in autoscales {
                    for batching in batchings {
                        let cfg = FrontendConfig {
                            hedge,
                            autoscale: *autoscale,
                            degrade_batching: *batching,
                            ..base.clone()
                        };
                        let summary = simulate_frontend(fleet, scheduler, admission, &cfg)?;
                        results.push(ComboResult {
                            scheduler: summary.scheduler.clone(),
                            admission: summary.admission.clone(),
                            hedging: hedge.hedging_enabled(),
                            autoscaling: autoscale.is_some(),
                            batched: batching.is_some(),
                            summary,
                        });
                    }
                }
            }
        }
    }
    Ok(results)
}

/// The combination with the highest goodput (ties keep sweep order).
pub fn best_goodput(results: &[ComboResult]) -> Option<&ComboResult> {
    results.iter().reduce(|best, c| {
        if c.summary.goodput_rps > best.summary.goodput_rps {
            c
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use sparsenn_core::engine::{AdmitAll, BoundedQueues, FirstIdle, LeastQueued};
    use sparsenn_serve::Workload;

    #[test]
    fn slo_policy_checks_per_class_deadlines() {
        let slo = SloPolicy {
            high_us: 100.0,
            low_us: 500.0,
        };
        assert!(slo.met(Priority::High, 100.0));
        assert!(!slo.met(Priority::High, 100.1));
        assert!(slo.met(Priority::Low, 400.0));
        assert!(slo.validate().is_ok());
        assert!(SloPolicy {
            high_us: 0.0,
            low_us: 1.0
        }
        .validate()
        .is_err());
        assert!(SloPolicy {
            high_us: 1.0,
            low_us: f64::INFINITY
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sweep_covers_the_cross_product_with_distinct_labels() {
        let fleet = vec![ShardSpec::uniform("a", 10.0), ShardSpec::uniform("b", 10.0)];
        let base = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 150_000.0,
                requests: 600,
                seed: 2,
            },
            SloPolicy {
                high_us: 120.0,
                low_us: 600.0,
            },
        )
        .low_fraction(0.25)
        .faults(FaultPlan::random(2, 6_000.0, 1, 0, 4));
        let bounded = BoundedQueues::new(32, 8);
        let results = sweep_combos(
            &fleet,
            &base,
            &[&FirstIdle, &LeastQueued],
            &[&AdmitAll, &bounded],
            &[HedgeConfig::disabled(), HedgeConfig::hedged(80.0)],
            &[None],
            &[None, Some(DegradeBatching::new(4, 100.0, 0.3))],
        )
        .unwrap();
        assert_eq!(results.len(), 16);
        let mut labels: Vec<String> = results.iter().map(ComboResult::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 16, "every combination is distinct");
        let best = best_goodput(&results).unwrap();
        assert!(best.summary.goodput_rps >= results[0].summary.goodput_rps);
    }
}
