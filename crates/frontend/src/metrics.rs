//! What a front-end run measured: per-class outcomes and fleet-wide
//! control-plane activity.
//!
//! Latencies accumulate in constant-space
//! [`StreamingLatency`](sparsenn_serve::StreamingLatency) trackers (one
//! per priority class), so a summary costs O(1) memory however many
//! requests the workload issues — the same accounting regime as
//! `sparsenn-serve`'s streaming mode.

use sparsenn_core::engine::Priority;
use sparsenn_serve::LatencyStats;

/// Outcomes for one [`Priority`] class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassStats {
    /// Requests of this class the workload offered.
    pub offered: usize,
    /// Requests admitted at full fidelity.
    pub admitted: usize,
    /// Requests admitted degraded (served at the degraded service cost).
    pub degraded: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Requests that completed (full-fidelity or degraded).
    pub completed: usize,
    /// Requests lost to fail-stops with no retry budget left.
    pub failed: usize,
    /// Completed requests that met their class SLO.
    pub slo_met: usize,
    /// End-to-end latency over completed requests: exact mean/max,
    /// P²-estimated percentiles.
    pub latency: LatencyStats,
}

impl ClassStats {
    /// Fraction of offered requests that completed within SLO (0 when
    /// nothing was offered).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.slo_met as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Everything one front-end simulation measured.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendSummary {
    /// Dispatch policy that ran.
    pub scheduler: String,
    /// Admission policy that ran.
    pub admission: String,
    /// Workload description.
    pub workload: String,
    /// Total requests the workload offered.
    pub requests: usize,
    /// Virtual time of the last resolution, µs.
    pub makespan_us: f64,
    /// Completions per second of virtual time (includes SLO misses).
    pub throughput_rps: f64,
    /// SLO-met completions per second of virtual time — the number the
    /// whole front end is tuned to maximize.
    pub goodput_rps: f64,
    /// Fraction of offered requests shed at admission (all classes).
    pub shed_rate: f64,
    /// Fraction of offered requests that completed within SLO (all
    /// classes).
    pub slo_attainment: f64,
    /// Per-class outcomes, indexed by [`Priority::index`] (High, Low).
    pub classes: [ClassStats; 2],
    /// Duplicate attempts dispatched by hedging timers.
    pub hedges_issued: usize,
    /// Completed requests whose winning attempt raced at least one hedge.
    pub hedge_wins: usize,
    /// Attempts cancelled because a sibling finished first.
    pub cancelled_attempts: usize,
    /// Attempts re-dispatched after a fail-stop.
    pub retries: usize,
    /// Fail-stop faults injected.
    pub failures_injected: usize,
    /// Slowdown faults injected.
    pub slowdowns_injected: usize,
    /// Autoscaler scale-out decisions taken.
    pub scale_outs: usize,
    /// Autoscaler scale-in decisions taken.
    pub scale_ins: usize,
    /// Degrade-tier batches flushed (0 unless degrade batching is on).
    pub degrade_batches: usize,
    /// Mean size of the flushed degrade batches (0 when none flushed).
    pub mean_degrade_batch: f64,
    /// Largest degrade batch flushed.
    pub max_degrade_batch: usize,
    /// Most shards simultaneously active at any point.
    pub peak_active_shards: usize,
    /// Shards active when the run ended.
    pub final_active_shards: usize,
}

impl FrontendSummary {
    /// The stats for `class`.
    pub fn class(&self, class: Priority) -> &ClassStats {
        &self.classes[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rates_guard_division_by_zero() {
        let empty = ClassStats::default();
        assert_eq!(empty.slo_attainment(), 0.0);
        assert_eq!(empty.shed_rate(), 0.0);
        let some = ClassStats {
            offered: 10,
            shed: 2,
            slo_met: 6,
            ..ClassStats::default()
        };
        assert!((some.slo_attainment() - 0.6).abs() < 1e-12);
        assert!((some.shed_rate() - 0.2).abs() < 1e-12);
    }
}
