//! What a front-end run measured: per-class outcomes and fleet-wide
//! control-plane activity.
//!
//! Latencies accumulate in constant-space
//! [`StreamingLatency`](sparsenn_serve::StreamingLatency) trackers (one
//! per priority class), so a summary costs O(1) memory however many
//! requests the workload issues — the same accounting regime as
//! `sparsenn-serve`'s streaming mode.

use sparsenn_core::engine::Priority;
use sparsenn_obs::{AlertKind, BurnAlert};
use sparsenn_serve::LatencyStats;

/// One burn-rate alert edge, tagged with the priority class whose SLO
/// budget raised it (each class runs its own monitor).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassBurnAlert {
    /// The class whose attainment budget fired or cleared.
    pub class: Priority,
    /// The alert edge itself (time, kind, window burn rates).
    pub alert: BurnAlert,
}

/// Outcomes for one [`Priority`] class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassStats {
    /// Requests of this class the workload offered.
    pub offered: usize,
    /// Requests admitted at full fidelity.
    pub admitted: usize,
    /// Requests admitted degraded (served at the degraded service cost).
    pub degraded: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Requests that completed (full-fidelity or degraded).
    pub completed: usize,
    /// Requests lost to fail-stops with no retry budget left.
    pub failed: usize,
    /// Completed requests that met their class SLO.
    pub slo_met: usize,
    /// End-to-end latency over completed requests: exact mean/max,
    /// P²-estimated percentiles.
    pub latency: LatencyStats,
}

impl ClassStats {
    /// Fraction of offered requests that completed within SLO (0 when
    /// nothing was offered).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.slo_met as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Everything one front-end simulation measured.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendSummary {
    /// Dispatch policy that ran.
    pub scheduler: String,
    /// Admission policy that ran.
    pub admission: String,
    /// Workload description.
    pub workload: String,
    /// Total requests the workload offered.
    pub requests: usize,
    /// Virtual time of the last resolution, µs.
    pub makespan_us: f64,
    /// Completions per second of virtual time (includes SLO misses).
    pub throughput_rps: f64,
    /// SLO-met completions per second of virtual time — the number the
    /// whole front end is tuned to maximize.
    pub goodput_rps: f64,
    /// Fraction of offered requests shed at admission (all classes).
    pub shed_rate: f64,
    /// Fraction of offered requests that completed within SLO (all
    /// classes).
    pub slo_attainment: f64,
    /// Per-class outcomes, indexed by [`Priority::index`] (High, Low).
    pub classes: [ClassStats; 2],
    /// Duplicate attempts dispatched by hedging timers.
    pub hedges_issued: usize,
    /// Completed requests whose winning attempt raced at least one hedge.
    pub hedge_wins: usize,
    /// Attempts cancelled because a sibling finished first.
    pub cancelled_attempts: usize,
    /// Cancelled attempts that were hedges — the losing duplicates
    /// (subset of [`cancelled_attempts`](Self::cancelled_attempts);
    /// the remainder are primaries a winning hedge displaced).
    pub hedges_cancelled: usize,
    /// Attempts re-dispatched after a fail-stop.
    pub retries: usize,
    /// Completed requests whose winning attempt was a fail-stop retry —
    /// completions the retry policy directly saved.
    pub retry_wins: usize,
    /// Fail-stop faults injected.
    pub failures_injected: usize,
    /// Slowdown faults injected.
    pub slowdowns_injected: usize,
    /// Autoscaler scale-out decisions taken.
    pub scale_outs: usize,
    /// Autoscaler scale-in decisions taken.
    pub scale_ins: usize,
    /// Degrade-tier batches flushed (0 unless degrade batching is on).
    pub degrade_batches: usize,
    /// Mean size of the flushed degrade batches (0 when none flushed).
    pub mean_degrade_batch: f64,
    /// Largest degrade batch flushed.
    pub max_degrade_batch: usize,
    /// Most shards simultaneously active at any point.
    pub peak_active_shards: usize,
    /// Shards active when the run ended.
    pub final_active_shards: usize,
    /// Burn-rate alert edges in virtual-time order (ties: High first).
    /// Empty unless the run configured a
    /// [`BurnConfig`](sparsenn_obs::BurnConfig) — the per-class
    /// monitors observe every terminal outcome (a shed or terminal
    /// failure is an SLO miss).
    pub burn_alerts: Vec<ClassBurnAlert>,
}

impl FrontendSummary {
    /// The stats for `class`.
    pub fn class(&self, class: Priority) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Exports the summary into a [`MetricsRegistry`] under `frontend.*`
    /// names: run-level gauges, control-plane counters, and per-class
    /// outcome counters and latency distributions.
    ///
    /// [`MetricsRegistry`]: sparsenn_obs::MetricsRegistry
    pub fn export_metrics(&self, registry: &mut sparsenn_obs::MetricsRegistry) {
        registry.inc("frontend.requests", self.requests as u64);
        registry.set_gauge("frontend.makespan_us", self.makespan_us);
        registry.set_gauge("frontend.throughput_rps", self.throughput_rps);
        registry.set_gauge("frontend.goodput_rps", self.goodput_rps);
        registry.set_gauge("frontend.shed_rate", self.shed_rate);
        registry.set_gauge("frontend.slo_attainment", self.slo_attainment);
        let counters = [
            ("hedges_issued", self.hedges_issued),
            ("hedge_wins", self.hedge_wins),
            ("cancelled_attempts", self.cancelled_attempts),
            ("hedges_cancelled", self.hedges_cancelled),
            ("retries", self.retries),
            ("retry_wins", self.retry_wins),
            ("failures_injected", self.failures_injected),
            ("slowdowns_injected", self.slowdowns_injected),
            ("scale_outs", self.scale_outs),
            ("scale_ins", self.scale_ins),
            ("degrade_batches", self.degrade_batches),
            ("peak_active_shards", self.peak_active_shards),
            ("final_active_shards", self.final_active_shards),
        ];
        for (name, value) in counters {
            registry.inc(&format!("frontend.{name}"), value as u64);
        }
        for (name, class) in [("high", &self.classes[0]), ("low", &self.classes[1])] {
            let p = format!("frontend.class.{name}");
            registry.inc(&format!("{p}.offered"), class.offered as u64);
            registry.inc(&format!("{p}.admitted"), class.admitted as u64);
            registry.inc(&format!("{p}.degraded"), class.degraded as u64);
            registry.inc(&format!("{p}.shed"), class.shed as u64);
            registry.inc(&format!("{p}.completed"), class.completed as u64);
            registry.inc(&format!("{p}.failed"), class.failed as u64);
            registry.inc(&format!("{p}.slo_met"), class.slo_met as u64);
            registry.record_latency(&format!("{p}.latency"), &class.latency);
        }
        let fired = |class: Priority| {
            self.burn_alerts
                .iter()
                .filter(|a| a.class == class && a.alert.kind == AlertKind::Fire)
                .count() as u64
        };
        registry.inc("frontend.burn.alerts", self.burn_alerts.len() as u64);
        registry.inc("frontend.class.high.burn_fired", fired(Priority::High));
        registry.inc("frontend.class.low.burn_fired", fired(Priority::Low));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rates_guard_division_by_zero() {
        let empty = ClassStats::default();
        assert_eq!(empty.slo_attainment(), 0.0);
        assert_eq!(empty.shed_rate(), 0.0);
        let some = ClassStats {
            offered: 10,
            shed: 2,
            slo_met: 6,
            ..ClassStats::default()
        };
        assert!((some.slo_attainment() - 0.6).abs() < 1e-12);
        assert!((some.shed_rate() - 0.2).abs() < 1e-12);
    }
}
