//! Epoch-driven autoscaling: grow the fleet before the queue does.
//!
//! Every `epoch_us` of virtual time the [`Autoscaler`] looks at two live
//! signals — mean shard **utilization** over the epoch and the epoch's
//! **P²-estimated p99 latency** (a fresh [`P2Quantile`] per epoch via
//! [`reset`](P2Quantile::reset), so decisions reflect *current* pressure,
//! not the whole run's history) — and decides to scale out, scale in, or
//! hold. A scaled-out shard pays `warmup_us` of virtual time (model load,
//! weight upload) before it takes traffic; scale-in only retires an idle
//! shard, never one holding work.

use sparsenn_core::engine::P2Quantile;

/// Autoscaling policy parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscaleConfig {
    /// Fewest active shards the scaler will keep.
    pub min_shards: usize,
    /// Most shards the scaler will activate (bounded by the fleet size).
    pub max_shards: usize,
    /// Epoch length: virtual µs between scaling decisions.
    pub epoch_us: f64,
    /// Warm-up cost: virtual µs between a scale-out decision and the new
    /// shard taking traffic.
    pub warmup_us: f64,
    /// Scale out when epoch utilization exceeds this (0..=1).
    pub scale_out_utilization: f64,
    /// Scale in when epoch utilization falls below this (0..=1).
    pub scale_in_utilization: f64,
    /// Also scale out when the epoch's P²-estimated p99 latency exceeds
    /// this, regardless of utilization (`None`: utilization only).
    pub scale_out_p99_us: Option<f64>,
}

impl AutoscaleConfig {
    /// A reasonable default: scale out above 80 % utilization, in below
    /// 30 %, between `min` and `max` shards.
    pub fn new(min_shards: usize, max_shards: usize, epoch_us: f64, warmup_us: f64) -> Self {
        Self {
            min_shards,
            max_shards,
            epoch_us,
            warmup_us,
            scale_out_utilization: 0.8,
            scale_in_utilization: 0.3,
            scale_out_p99_us: None,
        }
    }

    /// Adds a p99-latency scale-out trigger.
    pub fn scale_out_on_p99(mut self, p99_us: f64) -> Self {
        self.scale_out_p99_us = Some(p99_us);
        self
    }

    /// Checks the parameters are simulatable.
    ///
    /// # Errors
    ///
    /// A description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_shards == 0 {
            return Err("autoscaler needs at least one shard active".into());
        }
        if self.max_shards < self.min_shards {
            return Err(format!(
                "max_shards {} below min_shards {}",
                self.max_shards, self.min_shards
            ));
        }
        if !(self.epoch_us.is_finite() && self.epoch_us > 0.0) {
            return Err(format!(
                "epoch must be finite and positive, got {}",
                self.epoch_us
            ));
        }
        if !(self.warmup_us.is_finite() && self.warmup_us >= 0.0) {
            return Err(format!(
                "warm-up must be finite and >= 0, got {}",
                self.warmup_us
            ));
        }
        for (v, what) in [
            (self.scale_out_utilization, "scale-out utilization"),
            (self.scale_in_utilization, "scale-in utilization"),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{what} must be in [0, 1], got {v}"));
            }
        }
        if self.scale_in_utilization >= self.scale_out_utilization {
            return Err(format!(
                "scale-in threshold {} must sit below scale-out threshold {} (hysteresis)",
                self.scale_in_utilization, self.scale_out_utilization
            ));
        }
        if let Some(p) = self.scale_out_p99_us {
            if !(p.is_finite() && p > 0.0) {
                return Err(format!("p99 trigger must be finite and positive, got {p}"));
            }
        }
        Ok(())
    }
}

/// What the scaler decided at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Start warming one more shard.
    Out,
    /// Retire one idle shard.
    In,
    /// Leave the fleet as it is.
    Hold,
}

/// The live controller: accumulates one epoch's completion latencies in a
/// constant-space P² tracker and turns (utilization, p99) into a
/// [`ScaleDecision`] at each tick.
#[derive(Clone, Debug)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    epoch_p99: P2Quantile,
}

impl Autoscaler {
    /// A scaler with a fresh epoch window.
    pub fn new(config: AutoscaleConfig) -> Self {
        Self {
            config,
            epoch_p99: P2Quantile::new(0.99),
        }
    }

    /// The policy this scaler runs.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// Folds one completion latency into the current epoch's window.
    pub fn observe_latency(&mut self, latency_us: f64) {
        self.epoch_p99.observe(latency_us);
    }

    /// The current epoch's P²-estimated p99 latency (0 when the epoch saw
    /// no completions).
    pub fn epoch_p99_us(&self) -> f64 {
        self.epoch_p99.estimate()
    }

    /// Epoch boundary: decide from this epoch's mean `utilization` (0..=1
    /// over the active shards) given `active` serving shards and
    /// `warming` shards already on their way, then reset the latency
    /// window for the next epoch.
    pub fn decide(&mut self, utilization: f64, active: usize, warming: usize) -> ScaleDecision {
        let c = &self.config;
        let p99_hot = c
            .scale_out_p99_us
            .is_some_and(|limit| self.epoch_p99.estimate() > limit);
        self.epoch_p99.reset();
        if (utilization > c.scale_out_utilization || p99_hot) && active + warming < c.max_shards {
            ScaleDecision::Out
        } else if utilization < c.scale_in_utilization && warming == 0 && active > c.min_shards {
            ScaleDecision::In
        } else {
            ScaleDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscaleConfig {
        AutoscaleConfig::new(1, 4, 1000.0, 500.0)
    }

    #[test]
    fn utilization_thresholds_drive_out_and_in() {
        let mut a = Autoscaler::new(config());
        assert_eq!(a.decide(0.95, 2, 0), ScaleDecision::Out);
        assert_eq!(a.decide(0.5, 2, 0), ScaleDecision::Hold);
        assert_eq!(a.decide(0.1, 2, 0), ScaleDecision::In);
        // Bounds respected.
        assert_eq!(a.decide(0.95, 4, 0), ScaleDecision::Hold, "at max");
        assert_eq!(a.decide(0.95, 3, 1), ScaleDecision::Hold, "warming counts");
        assert_eq!(a.decide(0.1, 1, 0), ScaleDecision::Hold, "at min");
        assert_eq!(
            a.decide(0.1, 2, 1),
            ScaleDecision::Hold,
            "no scale-in while warming"
        );
    }

    #[test]
    fn p99_trigger_scales_out_at_low_utilization_and_resets_per_epoch() {
        let mut a = Autoscaler::new(config().scale_out_on_p99(100.0));
        for _ in 0..50 {
            a.observe_latency(500.0);
        }
        assert!(a.epoch_p99_us() > 100.0);
        assert_eq!(
            a.decide(0.5, 2, 0),
            ScaleDecision::Out,
            "tail latency alone must trigger growth"
        );
        // decide() reset the window: the same mid utilization now holds.
        assert_eq!(a.epoch_p99_us(), 0.0, "epoch window resets");
        assert_eq!(a.decide(0.5, 2, 0), ScaleDecision::Hold);
    }

    #[test]
    fn validation_rejects_inverted_thresholds_and_bad_bounds() {
        assert!(config().validate().is_ok());
        let mut c = config();
        c.scale_in_utilization = 0.9; // above scale-out: no hysteresis
        assert!(c.validate().is_err());
        let mut c = config();
        c.min_shards = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.max_shards = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.epoch_us = f64::NAN;
        assert!(c.validate().is_err());
        assert!(config().scale_out_on_p99(-1.0).validate().is_err());
    }
}
