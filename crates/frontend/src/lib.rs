//! Production front end for SparseNN serving: admission control, load
//! shedding, fault-tolerant dispatch, and autoscaling — simulated on the
//! `sparsenn-serve` virtual timeline.
//!
//! A fleet that merely schedules well still falls over in production:
//! overload turns unbounded queues into missed deadlines for *everyone*,
//! one straggling or fail-stopped shard poisons the tail, and a fleet
//! sized for the peak wastes its quiet hours. This crate adds the three
//! control loops that a serving system needs on top of dispatch, all
//! policy-pluggable and all exercised against seeded adversity:
//!
//! * **Admission** — the shared
//!   [`AdmissionGate`](sparsenn_core::engine::AdmissionGate) trait (the
//!   live [`Fleet`](sparsenn_core::engine::Fleet) consults the identical
//!   object): classify each request ([`Priority`]), then admit, degrade,
//!   or shed it *before* it queues into a missed deadline.
//! * **Tail tolerance** — a [`FaultPlan`] injects seeded fail-stops and
//!   straggler windows; a [`HedgeConfig`] fights back with hedged
//!   duplicate attempts (first finisher wins, loser cancelled) and
//!   fail-stop retries.
//! * **Autoscaling** — an [`Autoscaler`] watches epoch utilization and
//!   P²-estimated tail latency and grows/shrinks the active fleet,
//!   paying a warm-up cost before a new shard takes traffic.
//!
//! [`simulate_frontend`] runs one configuration; [`sweep_combos`] scores
//! the scheduler × admission × hedging × autoscaling × degrade-batching
//! cross product by goodput, shed rate, SLO attainment and p99
//! ([`FrontendSummary`]). A [`DegradeBatching`] config routes the degrade
//! tier onto the batch-native substrate: degraded requests buffer
//! centrally and flush as amortized batches (fill-or-deadline), trading
//! held latency for per-sample cost.
//! Latency accounting is constant-space
//! ([`StreamingLatency`](sparsenn_serve::StreamingLatency) per class).
//!
//! # Example
//!
//! ```
//! use sparsenn_core::engine::{BoundedQueues, LeastQueued, Priority};
//! use sparsenn_frontend::{
//!     simulate_frontend, FaultPlan, FrontendConfig, HedgeConfig, SloPolicy,
//! };
//! use sparsenn_serve::{ShardSpec, Workload};
//!
//! let fleet = vec![
//!     ShardSpec::uniform("m0", 10.0),
//!     ShardSpec::uniform("m1", 10.0),
//! ];
//! // 1.5× overload, 30 % low-priority, one injected shard failure.
//! let cfg = FrontendConfig::new(
//!     Workload::Poisson { rate_rps: 300_000.0, requests: 3_000, seed: 1 },
//!     SloPolicy { high_us: 150.0, low_us: 600.0 },
//! )
//! .low_fraction(0.3)
//! .faults(FaultPlan::random(2, 10_000.0, 1, 0, 7))
//! .hedge(HedgeConfig::hedged(80.0));
//!
//! let gate = BoundedQueues::new(24, 6).degrade_low_beyond(2);
//! let s = simulate_frontend(&fleet, &LeastQueued, &gate, &cfg).unwrap();
//! // Low-priority traffic absorbs the overload.
//! assert!(s.class(Priority::Low).shed_rate() > s.class(Priority::High).shed_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscale;
mod faults;
mod hedge;
mod metrics;
mod sim;
mod slo;

pub use autoscale::{AutoscaleConfig, Autoscaler, ScaleDecision};
pub use faults::{Fault, FaultPlan};
pub use hedge::HedgeConfig;
pub use metrics::{ClassBurnAlert, ClassStats, FrontendSummary};
pub use sim::{
    simulate_frontend, simulate_frontend_traced, DegradeBatching, FrontendConfig, FrontendError,
};
pub use slo::{best_goodput, sweep_combos, ComboResult, SloPolicy};

// The shared policy vocabulary, re-exported so front-end code reads from
// one place.
pub use sparsenn_core::engine::{
    AdmissionDecision, AdmissionGate, AdmitAll, BoundedQueues, Priority,
};
pub use sparsenn_obs::{AlertKind, BurnAlert, BurnConfig};
pub use sparsenn_serve::{ShardSpec, Workload};
