//! Fault and slowdown injection: the adversary a production front end is
//! built against.
//!
//! A [`FaultPlan`] is a fixed, validated timeline of shard failures and
//! stragglers, scheduled onto the simulator's event queue before any
//! traffic flows. Plans are data, not callbacks, so the identical
//! adversary replays against every policy combination under test —
//! hedged-vs-unhedged comparisons see the *same* failure at the *same*
//! virtual microsecond.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected misbehaviour on one shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The shard fail-stops at `at_us`: its in-service attempt and queued
    /// work are lost, and schedulers stop routing to it. It recovers
    /// empty and healthy at `at_us + down_us`.
    FailStop {
        /// Shard that fails.
        shard: usize,
        /// Virtual time of the failure, µs.
        at_us: f64,
        /// How long the shard stays down, µs.
        down_us: f64,
    },
    /// The shard becomes a straggler at `at_us`: attempts *started*
    /// during the window take `factor ×` their nominal service time. It
    /// returns to nominal speed at `at_us + for_us`.
    Slowdown {
        /// Shard that slows down.
        shard: usize,
        /// Virtual time the slowdown begins, µs.
        at_us: f64,
        /// Length of the slow window, µs.
        for_us: f64,
        /// Service-time multiplier, > 1.
        factor: f64,
    },
}

impl Fault {
    /// The shard the fault targets.
    pub fn shard(&self) -> usize {
        match *self {
            Fault::FailStop { shard, .. } | Fault::Slowdown { shard, .. } => shard,
        }
    }
}

/// A deterministic timeline of injected faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The injected faults, in no particular order (the event queue
    /// orders them by virtual time).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a healthy fleet.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with exactly these faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// A seeded random plan: `fail_stops` fail-stop intervals and
    /// `slowdowns` straggler windows spread uniformly over
    /// `[0, horizon_us)` across `shards` shards. Outage lengths draw from
    /// 5–20 % of the horizon, slowdown factors from 2–8×. Deterministic:
    /// the same arguments always produce the identical plan.
    pub fn random(
        shards: usize,
        horizon_us: f64,
        fail_stops: usize,
        slowdowns: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::with_capacity(fail_stops + slowdowns);
        for _ in 0..fail_stops {
            let shard = rng.gen_range(0..shards.max(1));
            let at_us = rng.gen::<f64>() * horizon_us;
            let down_us = (0.05 + 0.15 * rng.gen::<f64>()) * horizon_us;
            faults.push(Fault::FailStop {
                shard,
                at_us,
                down_us,
            });
        }
        for _ in 0..slowdowns {
            let shard = rng.gen_range(0..shards.max(1));
            let at_us = rng.gen::<f64>() * horizon_us;
            let for_us = (0.05 + 0.15 * rng.gen::<f64>()) * horizon_us;
            let factor = 2.0 + 6.0 * rng.gen::<f64>();
            faults.push(Fault::Slowdown {
                shard,
                at_us,
                for_us,
                factor,
            });
        }
        Self { faults }
    }

    /// Checks every fault targets an existing shard with finite,
    /// sensible parameters.
    ///
    /// # Errors
    ///
    /// A description of the first invalid fault.
    pub fn validate(&self, shards: usize) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            if f.shard() >= shards {
                return Err(format!(
                    "fault {i} targets shard {} of a {shards}-shard fleet",
                    f.shard()
                ));
            }
            let finite_nonneg = |v: f64, what: &str| -> Result<(), String> {
                if v.is_finite() && v >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "fault {i}: {what} must be finite and >= 0, got {v}"
                    ))
                }
            };
            match *f {
                Fault::FailStop { at_us, down_us, .. } => {
                    finite_nonneg(at_us, "failure time")?;
                    finite_nonneg(down_us, "outage length")?;
                    if down_us == 0.0 {
                        return Err(format!("fault {i}: outage length must be positive"));
                    }
                }
                Fault::Slowdown {
                    at_us,
                    for_us,
                    factor,
                    ..
                } => {
                    finite_nonneg(at_us, "slowdown start")?;
                    finite_nonneg(for_us, "slowdown length")?;
                    if !(factor.is_finite() && factor > 1.0) {
                        return Err(format!(
                            "fault {i}: slowdown factor must be finite and > 1, got {factor}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of fail-stop faults in the plan.
    pub fn fail_stops(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::FailStop { .. }))
            .count()
    }

    /// Number of slowdown faults in the plan.
    pub fn slowdowns(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::Slowdown { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(4, 100_000.0, 2, 3, 11);
        let b = FaultPlan::random(4, 100_000.0, 2, 3, 11);
        assert_eq!(a, b);
        assert_eq!(a.fail_stops(), 2);
        assert_eq!(a.slowdowns(), 3);
        assert!(a.validate(4).is_ok());
        let c = FaultPlan::random(4, 100_000.0, 2, 3, 12);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn validation_rejects_bad_faults() {
        let out_of_range = FaultPlan::new(vec![Fault::FailStop {
            shard: 4,
            at_us: 0.0,
            down_us: 10.0,
        }]);
        assert!(out_of_range.validate(4).is_err());
        let zero_outage = FaultPlan::new(vec![Fault::FailStop {
            shard: 0,
            at_us: 5.0,
            down_us: 0.0,
        }]);
        assert!(zero_outage.validate(1).is_err());
        let speedup = FaultPlan::new(vec![Fault::Slowdown {
            shard: 0,
            at_us: 5.0,
            for_us: 10.0,
            factor: 0.5,
        }]);
        assert!(speedup.validate(1).is_err());
        assert!(FaultPlan::none().validate(0).is_ok());
    }
}
