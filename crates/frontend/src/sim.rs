//! The production-front-end simulator: admission, faults, hedging and
//! autoscaling on one deterministic virtual timeline.
//!
//! [`simulate_frontend`] extends the `sparsenn-serve` discrete-event core
//! with the full [`FleetEvent`] vocabulary. Each arriving request is
//! classified ([`Priority`]), gated ([`AdmissionGate`] — admit, degrade,
//! or shed *before* touching a shard), then dispatched as a service
//! **attempt** by the shared [`Scheduler`] trait. Attempts — not requests
//! — are what shards run: a hedging timer may race a duplicate attempt
//! against a straggler (first finisher wins, the loser is cancelled and
//! its shard freed), and a fail-stop may kill an attempt mid-service
//! (retried on another shard when the [`HedgeConfig`] allows). An
//! optional [`Autoscaler`] grows and shrinks the active fleet at epoch
//! boundaries, paying a warm-up delay before a new shard takes traffic.
//!
//! Ties on the timeline break by push order, the class stream and fault
//! plan are seeded, and no hash-ordered container is iterated — a run is
//! a pure function of its arguments, so any two policy combinations can
//! be compared knowing every microsecond of difference is policy.

use crate::autoscale::{AutoscaleConfig, Autoscaler, ScaleDecision};
use crate::faults::{Fault, FaultPlan};
use crate::hedge::HedgeConfig;
use crate::metrics::{ClassBurnAlert, ClassStats, FrontendSummary};
use crate::slo::SloPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparsenn_core::engine::{AdmissionDecision, AdmissionGate, Priority, Scheduler, ShardView};
use sparsenn_obs::{
    track, AttrKey, BurnConfig, BurnRateMonitor, NullSink, Span, SpanKind, TraceSink,
};
use sparsenn_serve::{EventQueue, FleetEvent, ShardSpec, StreamingLatency, Workload};
use std::collections::VecDeque;

/// The trace-friendly class label.
fn class_name(class: Priority) -> &'static str {
    match class {
        Priority::High => "high",
        Priority::Low => "low",
    }
}

/// Everything one front-end run is configured by, minus the two policy
/// trait objects ([`Scheduler`], [`AdmissionGate`]) passed alongside.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendConfig {
    /// Traffic shape (shared with `sparsenn-serve`: the identical seeded
    /// arrival stream).
    pub workload: Workload,
    /// Probability an arriving request is [`Priority::Low`] (0..=1).
    pub low_fraction: f64,
    /// Seed of the class-assignment stream.
    pub class_seed: u64,
    /// Service-time multiplier for degraded requests (0 < f ≤ 1): the
    /// cheaper answer a [`Degrade`](AdmissionDecision::Degrade) buys.
    pub degrade_factor: f64,
    /// Per-class latency SLOs.
    pub slo: SloPolicy,
    /// Hedging and retry policy.
    pub hedge: HedgeConfig,
    /// Injected faults.
    pub faults: FaultPlan,
    /// Autoscaling policy (`None`: the active fleet is fixed).
    pub autoscale: Option<AutoscaleConfig>,
    /// Shards active at t = 0. `0` means: the autoscaler's `min_shards`
    /// when autoscaling, else the whole fleet. Inactive shards are the
    /// scale-out reserve.
    pub initial_active: usize,
    /// Degrade-tier batching (`None`: degraded requests dispatch
    /// immediately at [`degrade_factor`](Self::degrade_factor) cost).
    /// When set, degraded traffic is *held* in a central buffer and
    /// released as a batch — larger and slower for the degraded request,
    /// cheaper per sample for the fleet. See [`DegradeBatching`].
    pub degrade_batching: Option<DegradeBatching>,
    /// SLO burn-rate monitoring (`None`: off). When set, each priority
    /// class runs its own multi-window [`BurnRateMonitor`] over
    /// deadline attainment — every terminal outcome feeds it (sheds and
    /// terminal failures are misses) — and the run's alert edges land
    /// in [`FrontendSummary::burn_alerts`].
    pub burn: Option<BurnConfig>,
}

/// Routes the admission gate's degrade tier onto the batch-native
/// substrate: degraded requests buffer centrally and flush as one batch
/// when `max` have gathered or the oldest has waited `deadline_us`
/// (exactly a [`BatchPolicy::SizeOrDeadline`] hold window — the same
/// fill-or-deadline rule, applied to the degrade tier). Each member of a
/// flushed batch of `b` is served at `factor(b) = (1 + marginal_cost ×
/// (b − 1)) / b` of its full service time — the amortized per-sample
/// cost of a batch whose first sample pays full price and every further
/// sample `marginal_cost` of it (the batched machine's W-read
/// amortization shape).
///
/// [`BatchPolicy::SizeOrDeadline`]: sparsenn_core::engine::BatchPolicy::SizeOrDeadline
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeBatching {
    /// Buffer size that triggers a flush (≥ 1).
    pub max: usize,
    /// Oldest-request wait, µs, that flushes a partial buffer (finite,
    /// ≥ 0).
    pub deadline_us: f64,
    /// Marginal per-sample cost of growing a batch, as a fraction of a
    /// full service (0 < m ≤ 1; the batched machine measures ~0.2–0.5
    /// depending on sparsity overlap).
    pub marginal_cost: f64,
}

impl DegradeBatching {
    /// A hold window of up to `max` requests or `deadline_us`, at the
    /// given marginal batch cost.
    pub fn new(max: usize, deadline_us: f64, marginal_cost: f64) -> Self {
        Self {
            max,
            deadline_us,
            marginal_cost,
        }
    }

    /// Amortized per-sample service factor of a batch of `b` (≤ 1,
    /// decreasing in `b`; exactly 1 for a batch of one).
    pub fn factor(&self, b: usize) -> f64 {
        let b = b.max(1) as f64;
        (1.0 + self.marginal_cost * (b - 1.0)) / b
    }

    /// Checks the parameters, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.max == 0 {
            return Err("degrade batch size must be at least 1".into());
        }
        if !self.deadline_us.is_finite() || self.deadline_us < 0.0 {
            return Err(format!(
                "degrade batch deadline must be finite and non-negative, got {}",
                self.deadline_us
            ));
        }
        if !(self.marginal_cost.is_finite()
            && self.marginal_cost > 0.0
            && self.marginal_cost <= 1.0)
        {
            return Err(format!(
                "marginal batch cost must be in (0, 1], got {}",
                self.marginal_cost
            ));
        }
        Ok(())
    }
}

impl FrontendConfig {
    /// A high-priority-only, fault-free, unhedged, fixed-fleet baseline.
    pub fn new(workload: Workload, slo: SloPolicy) -> Self {
        Self {
            workload,
            low_fraction: 0.0,
            class_seed: 0xC1A55,
            degrade_factor: 0.5,
            slo,
            hedge: HedgeConfig::disabled(),
            faults: FaultPlan::none(),
            autoscale: None,
            initial_active: 0,
            degrade_batching: None,
            burn: None,
        }
    }

    /// Mixes in low-priority traffic at `fraction` of arrivals.
    pub fn low_fraction(mut self, fraction: f64) -> Self {
        self.low_fraction = fraction;
        self
    }

    /// Sets the hedging/retry policy.
    pub fn hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = hedge;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables autoscaling.
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Sets the number of shards active at t = 0.
    pub fn initial_active(mut self, shards: usize) -> Self {
        self.initial_active = shards;
        self
    }

    /// Routes the degrade tier through cross-request batching instead of
    /// the flat [`degrade_factor`](Self::degrade_factor) discount.
    pub fn degrade_batching(mut self, batching: DegradeBatching) -> Self {
        self.degrade_batching = Some(batching);
        self
    }

    /// Enables per-class SLO burn-rate monitoring.
    pub fn burn_monitor(mut self, burn: BurnConfig) -> Self {
        self.burn = Some(burn);
        self
    }
}

/// Why a front-end simulation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontendError {
    /// The fleet has no shards.
    NoShards,
    /// A shard's service table is empty or contains a non-finite or
    /// negative time.
    BadServiceTable {
        /// Offending shard index.
        shard: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// A configuration parameter is invalid.
    BadConfig(String),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::NoShards => f.write_str("a front-end fleet needs at least one shard"),
            FrontendError::BadServiceTable { shard, reason } => {
                write!(f, "shard {shard} service table: {reason}")
            }
            FrontendError::BadConfig(reason) => write!(f, "invalid front-end config: {reason}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Why an attempt was dispatched: the admission-time primary, a hedge
/// duplicate racing a straggler, or a re-dispatch after a fail-stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AttemptOrigin {
    Primary,
    Hedge,
    Retry,
}

impl AttemptOrigin {
    fn name(self) -> &'static str {
        match self {
            AttemptOrigin::Primary => "primary",
            AttemptOrigin::Hedge => "hedge",
            AttemptOrigin::Retry => "retry",
        }
    }
}

/// One service attempt of one request. Requests may spawn several
/// (hedges, retries); the first attempt to finish resolves the request.
#[derive(Clone, Copy, Debug)]
struct Attempt {
    id: u64,
    request: usize,
    origin: AttemptOrigin,
    /// Virtual time the attempt was dispatched — the start of its queue
    /// wait (its `Queued` span runs from here to service start).
    issued_us: f64,
}

struct ShardState {
    /// Part of the serving set (false: scale-out reserve or scaled in).
    active: bool,
    /// Activated but still paying the warm-up cost.
    warming: bool,
    /// Fail-stopped.
    failed: bool,
    /// Service-time multiplier while a straggler window is open.
    slow_factor: f64,
    queue: VecDeque<Attempt>,
    queued_work_us: f64,
    current: Option<(Attempt, f64)>,
    busy_until: f64,
    served: usize,
    busy_us: f64,
}

impl ShardState {
    fn new(active: bool) -> Self {
        Self {
            active,
            warming: false,
            failed: false,
            slow_factor: 1.0,
            queue: VecDeque::new(),
            queued_work_us: 0.0,
            current: None,
            busy_until: 0.0,
            served: 0,
            busy_us: 0.0,
        }
    }

    fn healthy(&self) -> bool {
        self.active && !self.warming && !self.failed
    }

    fn idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    fn backlog_us(&self, now_us: f64) -> f64 {
        let in_service = match self.current {
            Some(_) => (self.busy_until - now_us).max(0.0),
            None => 0.0,
        };
        in_service + self.queued_work_us
    }
}

struct RequestState {
    class: Priority,
    arrival_us: f64,
    degraded: bool,
    /// Service-time multiplier this request earned at admission: 1 for a
    /// full-fidelity answer, [`FrontendConfig::degrade_factor`] for a
    /// plain degrade, the amortized [`DegradeBatching::factor`] of its
    /// batch for a batched degrade (set at flush time).
    service_factor: f64,
    /// Held in the central degrade buffer, not yet dispatched.
    buffered: bool,
    /// Attempts currently in a queue or in service.
    live_attempts: u32,
    hedges_used: usize,
    hedged: bool,
    done: bool,
}

/// The running simulation. All mutation funnels through these methods so
/// the attempt/queue/waiting invariants live in one place.
struct Engine<'a> {
    specs: &'a [ShardSpec],
    scheduler: &'a dyn Scheduler,
    admission: &'a dyn AdmissionGate,
    cfg: &'a FrontendConfig,
    /// Trace destination; span construction is skipped entirely when
    /// the sink reports itself disabled.
    sink: &'a dyn TraceSink,
    events: EventQueue<FleetEvent>,
    shards: Vec<ShardState>,
    requests: Vec<RequestState>,
    central: VecDeque<Attempt>,
    /// Degraded requests held for the next batch flush (request ids, in
    /// arrival order — index 0 is the oldest, whose wait arms deadlines).
    degrade_buffer: Vec<usize>,
    /// Queued (not in-service) attempts per priority class — what the
    /// admission gate sees as `waiting_same_class`.
    waiting: [usize; 2],
    next_attempt: u64,
    resolved: usize,
    total_requests: usize,
    /// Closed-loop requests still to issue (completion/shed/fail driven).
    to_issue: usize,
    think_us: f64,
    class_rng: StdRng,
    scaler: Option<Autoscaler>,
    makespan_us: f64,
    // Accumulators.
    classes: [ClassStats; 2],
    latency: [StreamingLatency; 2],
    hedges_issued: usize,
    hedge_wins: usize,
    cancelled_attempts: usize,
    hedges_cancelled: usize,
    retries: usize,
    retry_wins: usize,
    scale_outs: usize,
    scale_ins: usize,
    peak_active: usize,
    last_epoch_busy_us: f64,
    degrade_batches: usize,
    degrade_batch_samples: usize,
    max_degrade_batch: usize,
    /// Per-class burn-rate monitors (indexed like `classes`), when
    /// configured. Fed at every terminal outcome.
    burn: [Option<BurnRateMonitor>; 2],
}

impl<'a> Engine<'a> {
    /// A zero-duration control-plane marker (admit/degrade/shed,
    /// hedge/cancel/retry) on the front end's control lane.
    fn emit_marker(&self, kind: SpanKind, request: usize, now: f64) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record(
            Span::new(
                request as u64,
                kind,
                track::FRONTEND,
                track::CONTROL,
                now,
                now,
            )
            .attr(AttrKey::Class, class_name(self.requests[request].class)),
        );
    }

    /// The request's end-to-end async span, emitted once at resolution
    /// (completion, terminal failure, or shed).
    fn emit_request_span(&self, request: usize, now: f64, outcome: &'static str) {
        if !self.sink.enabled() {
            return;
        }
        let r = &self.requests[request];
        self.sink.record(
            Span::new(
                request as u64,
                SpanKind::Request,
                track::FRONTEND,
                track::CONTROL,
                r.arrival_us,
                now,
            )
            .attr(AttrKey::Class, class_name(r.class))
            .attr(AttrKey::Outcome, outcome)
            .attr(AttrKey::Degraded, u64::from(r.degraded)),
        );
    }

    /// One attempt's time on a shard, on the fleet track's per-shard
    /// lane, emitted when the attempt leaves the shard (completed,
    /// cancelled by a winning sibling, or killed by a fail-stop).
    fn emit_attempt_span(
        &self,
        shard: usize,
        attempt: Attempt,
        start: f64,
        now: f64,
        outcome: &'static str,
    ) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.record(
            Span::new(
                attempt.request as u64,
                SpanKind::Attempt,
                track::FLEET,
                shard as u32 + 1,
                start,
                now,
            )
            .attr(AttrKey::Attempt, attempt.id)
            .attr(AttrKey::Origin, attempt.origin.name())
            .attr(AttrKey::Outcome, outcome)
            .attr(AttrKey::Shard, shard as u64),
        );
    }

    fn views(&self, now: f64, request: usize) -> Vec<ShardView> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardView {
                healthy: s.healthy(),
                idle: s.idle(),
                depth: s.depth(),
                backlog_us: s.backlog_us(now),
                service_us: self.specs[i].service_us[request % self.specs[i].service_us.len()]
                    * s.slow_factor,
            })
            .collect()
    }

    fn service_us(&self, shard: usize, request: usize) -> f64 {
        let spec = &self.specs[shard];
        let base = spec.service_us[request % spec.service_us.len()];
        base * self.shards[shard].slow_factor * self.requests[request].service_factor
    }

    fn start_service(&mut self, shard: usize, attempt: Attempt, now: f64) {
        if self.sink.enabled() {
            // The attempt's queue wait: dispatch to service start.
            self.sink.record(
                Span::new(
                    attempt.request as u64,
                    SpanKind::Queued,
                    track::FRONTEND,
                    track::CONTROL,
                    attempt.issued_us,
                    now,
                )
                .attr(AttrKey::Attempt, attempt.id)
                .attr(AttrKey::Origin, attempt.origin.name())
                .attr(AttrKey::Shard, shard as u64),
            );
        }
        let service = self.service_us(shard, attempt.request);
        self.shards[shard].current = Some((attempt, now));
        self.shards[shard].busy_until = now + service;
        self.events.push(
            now + service,
            FleetEvent::Completion {
                shard,
                attempt: attempt.id,
            },
        );
    }

    /// Places a fresh attempt for `request`: scheduler pick, then the
    /// first healthy idle shard, then the central queue (drained by the
    /// next shard to free up or come back).
    fn dispatch(&mut self, request: usize, now: f64, origin: AttemptOrigin) {
        let attempt = Attempt {
            id: self.next_attempt,
            request,
            origin,
            issued_us: now,
        };
        self.next_attempt += 1;
        self.requests[request].live_attempts += 1;
        let class = self.requests[request].class;
        let views = self.views(now, request);
        match self.scheduler.pick(&views) {
            Some(i) if i < self.shards.len() && self.shards[i].healthy() => {
                if self.shards[i].idle() {
                    self.start_service(i, attempt, now);
                } else {
                    self.shards[i].queued_work_us += self.service_us(i, request);
                    self.shards[i].queue.push_back(attempt);
                    self.waiting[class.index()] += 1;
                }
            }
            _ => {
                if let Some(i) = (0..self.shards.len())
                    .find(|&i| self.shards[i].healthy() && self.shards[i].idle())
                {
                    self.start_service(i, attempt, now);
                } else {
                    self.central.push_back(attempt);
                    self.waiting[class.index()] += 1;
                }
            }
        }
    }

    /// A shard freed up (completion, cancellation, recovery, warm-up
    /// done): pull its own queue first, then the central queue.
    fn pull_next(&mut self, shard: usize, now: f64) {
        if !self.shards[shard].healthy() || self.shards[shard].current.is_some() {
            return;
        }
        let next = if let Some(a) = self.shards[shard].queue.pop_front() {
            // Slowdown windows opening/closing between enqueue and
            // dequeue can skew the backlog estimate; clamp so it stays a
            // usable scheduler heuristic.
            let work = self.service_us(shard, a.request);
            self.shards[shard].queued_work_us = (self.shards[shard].queued_work_us - work).max(0.0);
            Some(a)
        } else {
            self.central.pop_front()
        };
        if let Some(a) = next {
            self.waiting[self.requests[a.request].class.index()] -= 1;
            self.start_service(shard, a, now);
        }
    }

    /// The winner of `request` finished: cancel every sibling attempt —
    /// in-service ones free their shard immediately, queued ones are
    /// removed — and account the cancellations.
    fn cancel_siblings(&mut self, request: usize, now: f64) {
        if self.requests[request].live_attempts == 0 {
            return;
        }
        let mut freed: Vec<usize> = Vec::new();
        for i in 0..self.shards.len() {
            if let Some((att, start)) = self.shards[i].current {
                if att.request == request {
                    self.shards[i].busy_us += now - start;
                    self.shards[i].current = None;
                    self.requests[request].live_attempts -= 1;
                    self.cancelled_attempts += 1;
                    if att.origin == AttemptOrigin::Hedge {
                        self.hedges_cancelled += 1;
                    }
                    self.emit_attempt_span(i, att, start, now, "cancelled");
                    self.emit_marker(SpanKind::Cancel, request, now);
                    freed.push(i);
                }
            }
        }
        if self.requests[request].live_attempts > 0 {
            let class = self.requests[request].class;
            let mut cancelled: Vec<Attempt> = Vec::new();
            for i in 0..self.shards.len() {
                let specs = self.specs;
                let slow = self.shards[i].slow_factor;
                let factor = self.requests[request].service_factor;
                let mut dropped_work = 0.0;
                self.shards[i].queue.retain(|a| {
                    if a.request == request {
                        dropped_work += specs[i].service_us[request % specs[i].service_us.len()]
                            * slow
                            * factor;
                        cancelled.push(*a);
                        false
                    } else {
                        true
                    }
                });
                self.shards[i].queued_work_us =
                    (self.shards[i].queued_work_us - dropped_work).max(0.0);
            }
            self.central.retain(|a| {
                if a.request == request {
                    cancelled.push(*a);
                    false
                } else {
                    true
                }
            });
            self.requests[request].live_attempts -= cancelled.len() as u32;
            self.cancelled_attempts += cancelled.len();
            self.waiting[class.index()] -= cancelled.len();
            for att in cancelled {
                if att.origin == AttemptOrigin::Hedge {
                    self.hedges_cancelled += 1;
                }
                self.emit_marker(SpanKind::Cancel, request, now);
            }
        }
        debug_assert_eq!(self.requests[request].live_attempts, 0);
        for i in freed {
            self.pull_next(i, now);
        }
    }

    /// A request left the system (completed, shed, or failed): track the
    /// makespan and keep a closed-loop client issuing.
    fn resolve(&mut self, now: f64) {
        self.resolved += 1;
        self.makespan_us = self.makespan_us.max(now);
        if self.to_issue > 0 {
            self.to_issue -= 1;
            self.events.push(now + self.think_us, FleetEvent::Arrival);
        }
    }

    fn on_completion(&mut self, shard: usize, attempt_id: u64, now: f64) {
        // Lazy cancellation: the completion is real only if the shard is
        // still running that exact attempt (fail-stops and cancellations
        // clear `current`, leaving the scheduled event to pop dead).
        let (attempt, start) = match self.shards[shard].current {
            Some((a, s)) if a.id == attempt_id => (a, s),
            _ => return,
        };
        self.shards[shard].current = None;
        self.shards[shard].served += 1;
        self.shards[shard].busy_us += now - start;
        let request = attempt.request;
        debug_assert!(!self.requests[request].done, "winner races are settled");
        self.requests[request].done = true;
        self.requests[request].live_attempts -= 1;
        if attempt.origin == AttemptOrigin::Retry {
            self.retry_wins += 1;
        }
        self.emit_attempt_span(shard, attempt, start, now, "completed");
        self.cancel_siblings(request, now);

        let class = self.requests[request].class;
        let latency = now - self.requests[request].arrival_us;
        let stats = &mut self.classes[class.index()];
        stats.completed += 1;
        let met = latency <= self.cfg.slo.limit_us(class);
        if met {
            stats.slo_met += 1;
        }
        if let Some(m) = &mut self.burn[class.index()] {
            m.observe(now, met);
        }
        self.latency[class.index()].observe(latency);
        if let Some(scaler) = &mut self.scaler {
            scaler.observe_latency(latency);
        }
        if self.requests[request].hedged {
            self.hedge_wins += 1;
        }
        self.emit_request_span(request, now, "completed");
        self.resolve(now);
        self.pull_next(shard, now);
    }

    fn on_fail(&mut self, shard: usize, now: f64) {
        self.shards[shard].failed = true;
        // Everything the shard held — in service and queued — is lost.
        let mut lost: Vec<Attempt> = Vec::new();
        if let Some((att, start)) = self.shards[shard].current.take() {
            self.shards[shard].busy_us += now - start;
            self.emit_attempt_span(shard, att, start, now, "failed");
            lost.push(att);
        }
        while let Some(att) = self.shards[shard].queue.pop_front() {
            self.waiting[self.requests[att.request].class.index()] -= 1;
            lost.push(att);
        }
        self.shards[shard].queued_work_us = 0.0;
        for att in lost {
            let request = att.request;
            if self.requests[request].done {
                continue;
            }
            self.requests[request].live_attempts -= 1;
            if self.cfg.hedge.retry_failed {
                self.retries += 1;
                self.emit_marker(SpanKind::Retry, request, now);
                self.dispatch(request, now, AttemptOrigin::Retry);
            } else if self.requests[request].live_attempts == 0 {
                let class = self.requests[request].class;
                self.requests[request].done = true;
                self.classes[class.index()].failed += 1;
                if let Some(m) = &mut self.burn[class.index()] {
                    m.observe(now, false);
                }
                self.emit_request_span(request, now, "failed");
                self.resolve(now);
            }
        }
    }

    fn on_scale_tick(&mut self, now: f64) {
        let epoch_us = match &self.cfg.autoscale {
            Some(a) => a.epoch_us,
            None => return,
        };
        // Busy time this epoch, including in-flight partial work.
        let total_busy: f64 = self
            .shards
            .iter()
            .map(|s| s.busy_us + s.current.map_or(0.0, |(_, start)| now - start))
            .sum();
        let epoch_busy = total_busy - self.last_epoch_busy_us;
        self.last_epoch_busy_us = total_busy;
        let active = self
            .shards
            .iter()
            .filter(|s| s.active && !s.warming)
            .count();
        let warming = self.shards.iter().filter(|s| s.warming).count();
        let utilization = if active > 0 {
            (epoch_busy / (active as f64 * epoch_us)).clamp(0.0, 1.0)
        } else {
            1.0 // nothing serving: maximal pressure
        };
        let scaler = self.scaler.as_mut().expect("autoscale config has a scaler");
        match scaler.decide(utilization, active, warming) {
            ScaleDecision::Out => {
                if let Some(i) = (0..self.shards.len()).find(|&i| !self.shards[i].active) {
                    self.shards[i].active = true;
                    self.shards[i].warming = true;
                    self.scale_outs += 1;
                    let warmup = self.cfg.autoscale.as_ref().expect("checked").warmup_us;
                    self.events
                        .push(now + warmup, FleetEvent::ShardReady { shard: i });
                }
            }
            ScaleDecision::In => {
                // Retire the highest-indexed idle healthy shard; if every
                // active shard holds work, hold instead.
                if let Some(i) = (0..self.shards.len())
                    .rev()
                    .find(|&i| self.shards[i].healthy() && self.shards[i].idle())
                {
                    self.shards[i].active = false;
                    self.scale_ins += 1;
                }
            }
            ScaleDecision::Hold => {}
        }
        self.peak_active = self.peak_active.max(
            self.shards
                .iter()
                .filter(|s| s.active && !s.warming)
                .count(),
        );
        if self.resolved < self.total_requests {
            self.events.push(now + epoch_us, FleetEvent::ScaleTick);
        }
    }

    fn on_arrival(&mut self, now: f64) {
        let class = if self.class_rng.gen::<f64>() < self.cfg.low_fraction {
            Priority::Low
        } else {
            Priority::High
        };
        let request = self.requests.len();
        self.requests.push(RequestState {
            class,
            arrival_us: now,
            degraded: false,
            service_factor: 1.0,
            buffered: false,
            live_attempts: 0,
            hedges_used: 0,
            hedged: false,
            done: false,
        });
        let stats = &mut self.classes[class.index()];
        stats.offered += 1;
        let views = self.views(now, request);
        match self
            .admission
            .decide(class, self.waiting[class.index()], &views)
        {
            AdmissionDecision::Admit => {
                self.classes[class.index()].admitted += 1;
                self.emit_marker(SpanKind::Admit, request, now);
            }
            AdmissionDecision::Degrade => {
                self.classes[class.index()].degraded += 1;
                self.requests[request].degraded = true;
                self.emit_marker(SpanKind::Degrade, request, now);
                if let Some(b) = self.cfg.degrade_batching {
                    // Hold in the central degrade buffer: the request
                    // dispatches when the batch fills or the oldest
                    // member's deadline fires, at the amortized batch
                    // cost. Hedge timers arm at flush, not here — a
                    // buffered request has no attempt to race against.
                    self.requests[request].buffered = true;
                    self.degrade_buffer.push(request);
                    if self.degrade_buffer.len() >= b.max {
                        self.flush_degrade_buffer(now);
                    } else {
                        self.events
                            .push(now + b.deadline_us, FleetEvent::BatchFlush);
                    }
                    return;
                }
                self.requests[request].service_factor = self.cfg.degrade_factor;
            }
            AdmissionDecision::Shed => {
                self.classes[class.index()].shed += 1;
                if let Some(m) = &mut self.burn[class.index()] {
                    m.observe(now, false);
                }
                self.requests[request].done = true;
                self.emit_marker(SpanKind::Shed, request, now);
                self.emit_request_span(request, now, "shed");
                self.resolve(now);
                return;
            }
        }
        self.dispatch(request, now, AttemptOrigin::Primary);
        if self.cfg.hedge.hedging_enabled() {
            self.events
                .push(now + self.cfg.hedge.after_us, FleetEvent::Hedge { request });
        }
    }

    /// Releases the degrade buffer as one batch: every member gets the
    /// amortized per-sample service factor of the batch size it rode in,
    /// then dispatches (and arms its hedge timer) as usual.
    fn flush_degrade_buffer(&mut self, now: f64) {
        let batching = match self.cfg.degrade_batching {
            Some(b) => b,
            None => return,
        };
        if self.degrade_buffer.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.degrade_buffer);
        let factor = batching.factor(batch.len());
        self.degrade_batches += 1;
        self.degrade_batch_samples += batch.len();
        self.max_degrade_batch = self.max_degrade_batch.max(batch.len());
        let batch_size = batch.len() as u64;
        for request in batch {
            if self.sink.enabled() {
                // The hold window: admission to batch flush.
                self.sink.record(
                    Span::new(
                        request as u64,
                        SpanKind::DegradeBatch,
                        track::FRONTEND,
                        track::CONTROL,
                        self.requests[request].arrival_us,
                        now,
                    )
                    .attr(AttrKey::BatchSize, batch_size),
                );
            }
            self.requests[request].buffered = false;
            self.requests[request].service_factor = factor;
            self.dispatch(request, now, AttemptOrigin::Primary);
            if self.cfg.hedge.hedging_enabled() {
                self.events
                    .push(now + self.cfg.hedge.after_us, FleetEvent::Hedge { request });
            }
        }
    }

    /// A degrade-batch deadline pops. A fill may have flushed the buffer
    /// early, leaving this deadline stale for a *younger* buffer: only
    /// fire when the current oldest member has genuinely waited out the
    /// deadline (ε absorbs float round-off at an exactly-on-time pop).
    fn on_batch_flush(&mut self, now: f64) {
        let batching = match self.cfg.degrade_batching {
            Some(b) => b,
            None => return,
        };
        let oldest = match self.degrade_buffer.first() {
            Some(&r) => self.requests[r].arrival_us,
            None => return,
        };
        if now - oldest + 1e-9 >= batching.deadline_us {
            self.flush_degrade_buffer(now);
        }
    }

    fn on_hedge(&mut self, request: usize, now: f64) {
        let r = &mut self.requests[request];
        if r.done || r.buffered || r.hedges_used >= self.cfg.hedge.max_hedges {
            return;
        }
        r.hedges_used += 1;
        r.hedged = true;
        self.hedges_issued += 1;
        self.emit_marker(SpanKind::Hedge, request, now);
        self.dispatch(request, now, AttemptOrigin::Hedge);
        if self.requests[request].hedges_used < self.cfg.hedge.max_hedges {
            self.events
                .push(now + self.cfg.hedge.after_us, FleetEvent::Hedge { request });
        }
    }
}

/// Runs one front-end simulation to completion.
///
/// Deterministic: the summary is a pure function of the arguments.
///
/// # Errors
///
/// [`FrontendError`] when the fleet is empty, a service table is
/// unusable, or any configuration parameter (workload, hedge policy,
/// fault plan, autoscaler, class mix) is invalid.
pub fn simulate_frontend(
    fleet: &[ShardSpec],
    scheduler: &dyn Scheduler,
    admission: &dyn AdmissionGate,
    cfg: &FrontendConfig,
) -> Result<FrontendSummary, FrontendError> {
    simulate_frontend_traced(fleet, scheduler, admission, cfg, &NullSink)
}

/// [`simulate_frontend`] with a trace sink: every request's life —
/// admission verdict, degrade-batch hold, per-attempt queue wait and
/// shard service, hedge/cancel/retry control events — is recorded as
/// [`Span`]s on the virtual clock, keyed by request id. With a disabled
/// sink (e.g. [`NullSink`]) no span is ever constructed and the run is
/// bit-identical to the untraced one; the summary is identical either
/// way.
///
/// # Errors
///
/// Exactly as [`simulate_frontend`].
pub fn simulate_frontend_traced(
    fleet: &[ShardSpec],
    scheduler: &dyn Scheduler,
    admission: &dyn AdmissionGate,
    cfg: &FrontendConfig,
    sink: &dyn TraceSink,
) -> Result<FrontendSummary, FrontendError> {
    if fleet.is_empty() {
        return Err(FrontendError::NoShards);
    }
    for (i, s) in fleet.iter().enumerate() {
        if s.service_us.is_empty() {
            return Err(FrontendError::BadServiceTable {
                shard: i,
                reason: "empty".into(),
            });
        }
        if let Some(bad) = s.service_us.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(FrontendError::BadServiceTable {
                shard: i,
                reason: format!("service time {bad} is not finite and non-negative"),
            });
        }
    }
    cfg.workload.validate().map_err(FrontendError::BadConfig)?;
    cfg.hedge.validate().map_err(FrontendError::BadConfig)?;
    cfg.faults
        .validate(fleet.len())
        .map_err(FrontendError::BadConfig)?;
    cfg.slo.validate().map_err(FrontendError::BadConfig)?;
    if !(0.0..=1.0).contains(&cfg.low_fraction) {
        return Err(FrontendError::BadConfig(format!(
            "low-priority fraction must be in [0, 1], got {}",
            cfg.low_fraction
        )));
    }
    if !(cfg.degrade_factor.is_finite() && cfg.degrade_factor > 0.0 && cfg.degrade_factor <= 1.0) {
        return Err(FrontendError::BadConfig(format!(
            "degrade factor must be in (0, 1], got {}",
            cfg.degrade_factor
        )));
    }
    if let Some(b) = &cfg.degrade_batching {
        b.validate().map_err(FrontendError::BadConfig)?;
    }
    if let Some(b) = &cfg.burn {
        b.validate().map_err(FrontendError::BadConfig)?;
    }
    if let Some(a) = &cfg.autoscale {
        a.validate().map_err(FrontendError::BadConfig)?;
        if a.max_shards > fleet.len() {
            return Err(FrontendError::BadConfig(format!(
                "autoscaler max_shards {} exceeds the {}-shard fleet",
                a.max_shards,
                fleet.len()
            )));
        }
    }

    let initial_active = match (&cfg.autoscale, cfg.initial_active) {
        (_, n) if n > 0 => n.min(fleet.len()),
        (Some(a), 0) => a.min_shards,
        (None, 0) => fleet.len(),
        _ => unreachable!(),
    };
    if let Some(a) = &cfg.autoscale {
        if !(a.min_shards..=a.max_shards).contains(&initial_active) {
            return Err(FrontendError::BadConfig(format!(
                "initial_active {initial_active} outside the autoscaler's [{}, {}] band",
                a.min_shards, a.max_shards
            )));
        }
    }

    let total_requests = cfg.workload.requests();
    let mut events: EventQueue<FleetEvent> = EventQueue::new();
    let mut open_arrivals = cfg.workload.open_arrivals();
    let (think_us, to_issue) = match cfg.workload {
        Workload::ClosedLoop {
            concurrency,
            requests,
            think_us,
        } => {
            for _ in 0..concurrency.min(requests) {
                events.push(0.0, FleetEvent::Arrival);
            }
            (think_us, requests - concurrency.min(requests))
        }
        _ => {
            let stream = open_arrivals.as_mut().expect("open workload has a stream");
            if let Some(t) = stream.next() {
                events.push(t, FleetEvent::Arrival);
            }
            (0.0, 0)
        }
    };
    // The fault timeline goes on the same queue as the traffic.
    for f in &cfg.faults.faults {
        match *f {
            Fault::FailStop {
                shard,
                at_us,
                down_us,
            } => {
                events.push(at_us, FleetEvent::Fail { shard });
                events.push(at_us + down_us, FleetEvent::Recover { shard });
            }
            Fault::Slowdown {
                shard,
                at_us,
                for_us,
                factor,
            } => {
                events.push(at_us, FleetEvent::SlowdownStart { shard, factor });
                events.push(at_us + for_us, FleetEvent::SlowdownEnd { shard });
            }
        }
    }
    if let Some(a) = &cfg.autoscale {
        events.push(a.epoch_us, FleetEvent::ScaleTick);
    }

    let mut engine = Engine {
        specs: fleet,
        scheduler,
        admission,
        cfg,
        sink,
        events,
        shards: (0..fleet.len())
            .map(|i| ShardState::new(i < initial_active))
            .collect(),
        requests: Vec::with_capacity(total_requests),
        central: VecDeque::new(),
        degrade_buffer: Vec::new(),
        waiting: [0, 0],
        next_attempt: 0,
        resolved: 0,
        total_requests,
        to_issue,
        think_us,
        class_rng: StdRng::seed_from_u64(cfg.class_seed),
        scaler: cfg.autoscale.map(Autoscaler::new),
        makespan_us: 0.0,
        classes: [ClassStats::default(), ClassStats::default()],
        latency: [StreamingLatency::new(), StreamingLatency::new()],
        hedges_issued: 0,
        hedge_wins: 0,
        cancelled_attempts: 0,
        hedges_cancelled: 0,
        retries: 0,
        retry_wins: 0,
        scale_outs: 0,
        scale_ins: 0,
        peak_active: initial_active,
        last_epoch_busy_us: 0.0,
        degrade_batches: 0,
        degrade_batch_samples: 0,
        max_degrade_batch: 0,
        burn: [
            cfg.burn.map(BurnRateMonitor::new),
            cfg.burn.map(BurnRateMonitor::new),
        ],
    };

    while let Some((now, event)) = engine.events.pop() {
        // The run is over once every request resolves; events still on
        // the timeline (a recovery, a shard becoming warm, a stale
        // hedge timer) must not keep mutating the measured state.
        if engine.resolved >= engine.total_requests {
            break;
        }
        match event {
            FleetEvent::Arrival => {
                if let Some(stream) = open_arrivals.as_mut() {
                    if let Some(t) = stream.next() {
                        engine.events.push(t, FleetEvent::Arrival);
                    }
                }
                engine.on_arrival(now);
            }
            FleetEvent::Completion { shard, attempt } => {
                engine.on_completion(shard, attempt, now);
            }
            FleetEvent::Fail { shard } => engine.on_fail(shard, now),
            FleetEvent::Recover { shard } => {
                engine.shards[shard].failed = false;
                engine.pull_next(shard, now);
            }
            FleetEvent::SlowdownStart { shard, factor } => {
                engine.shards[shard].slow_factor = factor;
            }
            FleetEvent::SlowdownEnd { shard } => {
                engine.shards[shard].slow_factor = 1.0;
            }
            FleetEvent::Hedge { request } => engine.on_hedge(request, now),
            FleetEvent::BatchFlush => engine.on_batch_flush(now),
            FleetEvent::ScaleTick => engine.on_scale_tick(now),
            FleetEvent::ShardReady { shard } => {
                if engine.shards[shard].warming {
                    engine.shards[shard].warming = false;
                    engine.peak_active = engine.peak_active.max(
                        engine
                            .shards
                            .iter()
                            .filter(|s| s.active && !s.warming)
                            .count(),
                    );
                    engine.pull_next(shard, now);
                }
            }
        }
    }

    debug_assert_eq!(engine.resolved, total_requests, "every request resolves");
    let mut classes = engine.classes;
    for (c, lat) in classes.iter_mut().zip(&engine.latency) {
        c.latency = lat.stats();
    }
    let offered: usize = classes.iter().map(|c| c.offered).sum();
    let completed: usize = classes.iter().map(|c| c.completed).sum();
    let slo_met: usize = classes.iter().map(|c| c.slo_met).sum();
    let shed: usize = classes.iter().map(|c| c.shed).sum();
    let makespan_s = engine.makespan_us * 1e-6;
    let mut burn_alerts: Vec<ClassBurnAlert> = Vec::new();
    for (class, monitor) in [Priority::High, Priority::Low]
        .into_iter()
        .zip(&engine.burn)
    {
        if let Some(m) = monitor {
            burn_alerts.extend(
                m.alerts()
                    .iter()
                    .map(|&alert| ClassBurnAlert { class, alert }),
            );
        }
    }
    burn_alerts.sort_by(|x, y| {
        x.alert
            .at_us
            .total_cmp(&y.alert.at_us)
            .then(x.class.index().cmp(&y.class.index()))
    });
    Ok(FrontendSummary {
        scheduler: scheduler.name().to_string(),
        admission: admission.name().to_string(),
        workload: cfg.workload.to_string(),
        requests: offered,
        makespan_us: engine.makespan_us,
        throughput_rps: if makespan_s > 0.0 {
            completed as f64 / makespan_s
        } else {
            0.0
        },
        goodput_rps: if makespan_s > 0.0 {
            slo_met as f64 / makespan_s
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            shed as f64 / offered as f64
        } else {
            0.0
        },
        slo_attainment: if offered > 0 {
            slo_met as f64 / offered as f64
        } else {
            0.0
        },
        classes,
        hedges_issued: engine.hedges_issued,
        hedge_wins: engine.hedge_wins,
        cancelled_attempts: engine.cancelled_attempts,
        hedges_cancelled: engine.hedges_cancelled,
        retries: engine.retries,
        retry_wins: engine.retry_wins,
        failures_injected: cfg.faults.fail_stops(),
        slowdowns_injected: cfg.faults.slowdowns(),
        scale_outs: engine.scale_outs,
        scale_ins: engine.scale_ins,
        degrade_batches: engine.degrade_batches,
        mean_degrade_batch: if engine.degrade_batches > 0 {
            engine.degrade_batch_samples as f64 / engine.degrade_batches as f64
        } else {
            0.0
        },
        max_degrade_batch: engine.max_degrade_batch,
        peak_active_shards: engine.peak_active,
        final_active_shards: engine
            .shards
            .iter()
            .filter(|s| s.active && !s.warming)
            .count(),
        burn_alerts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_core::engine::{AdmitAll, BoundedQueues, FirstIdle, LeastQueued};

    fn fleet(n: usize, service_us: f64) -> Vec<ShardSpec> {
        (0..n)
            .map(|i| ShardSpec::uniform(format!("shard-{i}"), service_us))
            .collect()
    }

    fn slo() -> SloPolicy {
        SloPolicy {
            high_us: 100.0,
            low_us: 400.0,
        }
    }

    #[test]
    fn healthy_fleet_completes_everything_within_slo() {
        let cfg = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 100_000.0, // half of 2×100k capacity
                requests: 2000,
                seed: 3,
            },
            slo(),
        );
        let s = simulate_frontend(&fleet(2, 10.0), &LeastQueued, &AdmitAll, &cfg).unwrap();
        assert_eq!(s.requests, 2000);
        assert_eq!(s.class(Priority::High).completed, 2000);
        assert_eq!(s.shed_rate, 0.0);
        assert!(s.slo_attainment > 0.99, "attainment {}", s.slo_attainment);
        assert!(s.goodput_rps > 0.0);
        assert_eq!(s.hedges_issued, 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.final_active_shards, 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = FrontendConfig::new(
            Workload::Bursty {
                low_rps: 30_000.0,
                high_rps: 400_000.0,
                period_us: 1_000.0,
                duty: 0.3,
                requests: 1500,
                seed: 8,
            },
            slo(),
        )
        .low_fraction(0.3)
        .hedge(HedgeConfig::hedged(60.0))
        .faults(FaultPlan::random(3, 20_000.0, 1, 1, 21))
        .degrade_batching(DegradeBatching::new(3, 120.0, 0.3));
        let run = || {
            simulate_frontend(
                &fleet(3, 10.0),
                &LeastQueued,
                &BoundedQueues::new(64, 16).degrade_low_beyond(4),
                &cfg,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overload_with_bounded_queues_sheds_low_priority_first() {
        // 2 shards × 100k rps capacity; offered 2× that, 40 % low.
        let cfg = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 400_000.0,
                requests: 4000,
                seed: 5,
            },
            slo(),
        )
        .low_fraction(0.4);
        let gate = BoundedQueues::new(8, 2).degrade_low_beyond(1);
        let s = simulate_frontend(&fleet(2, 10.0), &LeastQueued, &gate, &cfg).unwrap();
        let high = s.class(Priority::High);
        let low = s.class(Priority::Low);
        assert!(
            low.shed_rate() > high.shed_rate() + 0.1,
            "low sheds first: {low:?} vs {high:?}"
        );
        assert!(low.degraded > 0, "degrade tier engaged");
        assert!(
            high.latency.p99_us <= slo().high_us,
            "bounded queue bounds the high tail: {}",
            high.latency.p99_us
        );
        // Conservation per class.
        for c in &s.classes {
            assert_eq!(c.offered, c.completed + c.shed + c.failed);
        }
    }

    #[test]
    fn burn_monitor_fires_under_overload_and_stays_quiet_at_nominal_load() {
        let burn = BurnConfig::new(0.9, 2_000.0, 10_000.0);
        let run = |rate_rps: f64| {
            let cfg = FrontendConfig::new(
                Workload::Poisson {
                    rate_rps,
                    requests: 3000,
                    seed: 11,
                },
                slo(),
            )
            .low_fraction(0.4)
            .burn_monitor(burn);
            simulate_frontend(&fleet(2, 10.0), &LeastQueued, &AdmitAll, &cfg).unwrap()
        };
        // 2 shards × 100k rps capacity. Offered 2×: queues grow without
        // bound, both classes blow their SLOs, both monitors fire.
        let hot = run(400_000.0);
        let fires = |s: &FrontendSummary, class| {
            s.burn_alerts
                .iter()
                .filter(|a| a.class == class && a.alert.kind == sparsenn_obs::AlertKind::Fire)
                .count()
        };
        assert!(
            fires(&hot, Priority::High) + fires(&hot, Priority::Low) >= 1,
            "overload raises at least one alert: {:?}",
            hot.burn_alerts
        );
        let sorted = hot
            .burn_alerts
            .windows(2)
            .all(|w| w[0].alert.at_us <= w[1].alert.at_us);
        assert!(sorted, "alerts come back in time order");
        // Offered 0.25× capacity: everything meets SLO, zero alerts.
        let calm = run(50_000.0);
        assert!(
            calm.burn_alerts.is_empty(),
            "nominal load is quiet: {:?}",
            calm.burn_alerts
        );
        assert!(calm.slo_attainment > 0.99);
    }

    #[test]
    fn fail_stop_without_retries_loses_requests_with_retries_none() {
        let w = Workload::Poisson {
            rate_rps: 190_000.0, // 95 % of capacity: shards stay busy
            requests: 3000,
            seed: 7,
        };
        let plan = FaultPlan::new(vec![Fault::FailStop {
            shard: 0,
            at_us: 3_000.0,
            down_us: 8_000.0,
        }]);
        let no_retry = FrontendConfig::new(w, slo()).faults(plan.clone());
        let s = simulate_frontend(&fleet(2, 10.0), &LeastQueued, &AdmitAll, &no_retry).unwrap();
        assert!(
            s.class(Priority::High).failed > 0,
            "in-flight work dies with the shard"
        );
        assert_eq!(s.failures_injected, 1);

        let retry = FrontendConfig::new(w, slo())
            .faults(plan)
            .hedge(HedgeConfig::retries_only());
        let s = simulate_frontend(&fleet(2, 10.0), &LeastQueued, &AdmitAll, &retry).unwrap();
        assert_eq!(
            s.class(Priority::High).failed,
            0,
            "retries save every request"
        );
        assert!(s.retries > 0);
        assert_eq!(s.class(Priority::High).completed, 3000);
    }

    #[test]
    fn hedging_rescues_requests_stuck_behind_a_straggler() {
        // Shard 0 is 20× slow for a long window; hedges re-dispatch its
        // victims to the healthy shard.
        let w = Workload::Poisson {
            rate_rps: 60_000.0,
            requests: 2000,
            seed: 11,
        };
        let plan = FaultPlan::new(vec![Fault::Slowdown {
            shard: 0,
            at_us: 1_000.0,
            for_us: 15_000.0,
            factor: 20.0,
        }]);
        let unhedged = FrontendConfig::new(w, slo()).faults(plan.clone());
        let hedged = FrontendConfig::new(w, slo())
            .faults(plan)
            .hedge(HedgeConfig::hedged(40.0));
        let fleet = fleet(3, 10.0);
        let a = simulate_frontend(&fleet, &FirstIdle, &AdmitAll, &unhedged).unwrap();
        let b = simulate_frontend(&fleet, &FirstIdle, &AdmitAll, &hedged).unwrap();
        assert!(b.hedges_issued > 0);
        assert!(b.hedge_wins > 0);
        assert!(b.cancelled_attempts > 0, "losing attempts are cancelled");
        assert!(
            b.slo_attainment > a.slo_attainment,
            "hedged attainment {} must beat unhedged {}",
            b.slo_attainment,
            a.slo_attainment
        );
        assert!(
            b.class(Priority::High).latency.p99_us < a.class(Priority::High).latency.p99_us,
            "hedging cuts the tail: {} vs {}",
            b.class(Priority::High).latency.p99_us,
            a.class(Priority::High).latency.p99_us
        );
    }

    #[test]
    fn autoscaler_grows_under_load_after_warmup_and_shrinks_when_quiet() {
        // One active shard (100k rps) against 180k offered: must scale out.
        // The long quiet tail of the bursty workload then scales back in.
        let cfg = FrontendConfig::new(
            Workload::Bursty {
                low_rps: 5_000.0,
                high_rps: 250_000.0,
                period_us: 40_000.0,
                duty: 0.5,
                requests: 6000,
                seed: 13,
            },
            slo(),
        )
        .autoscale(AutoscaleConfig::new(1, 4, 1_000.0, 2_000.0));
        let s = simulate_frontend(&fleet(4, 10.0), &LeastQueued, &AdmitAll, &cfg).unwrap();
        assert!(s.scale_outs > 0, "overload must trigger growth");
        assert!(s.peak_active_shards > 1);
        assert!(s.scale_ins > 0, "quiet phase must trigger shrink");
        assert_eq!(
            s.class(Priority::High).completed,
            6000,
            "scaling never drops a request"
        );
    }

    #[test]
    fn closed_loop_clients_reissue_after_sheds() {
        // Concurrency 8 against 1 shard with a tiny low-priority budget:
        // sheds happen, yet every one of the fixed number of requests
        // resolves (shed clients issue their next request).
        let cfg = FrontendConfig::new(
            Workload::ClosedLoop {
                concurrency: 8,
                requests: 400,
                think_us: 0.0,
            },
            slo(),
        )
        .low_fraction(0.5);
        let gate = BoundedQueues::new(4, 0); // low always sheds
        let s = simulate_frontend(&fleet(1, 10.0), &FirstIdle, &gate, &cfg).unwrap();
        assert_eq!(s.requests, 400);
        let resolved: usize = s
            .classes
            .iter()
            .map(|c| c.completed + c.shed + c.failed)
            .sum();
        assert_eq!(resolved, 400);
        assert!(s.class(Priority::Low).shed > 0);
        assert_eq!(s.class(Priority::Low).completed, 0, "cap 0 sheds all low");
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let w = Workload::Poisson {
            rate_rps: 1000.0,
            requests: 10,
            seed: 0,
        };
        let base = FrontendConfig::new(w, slo());
        assert_eq!(
            simulate_frontend(&[], &FirstIdle, &AdmitAll, &base).unwrap_err(),
            FrontendError::NoShards
        );
        let bad_frac = base.clone().low_fraction(1.5);
        assert!(matches!(
            simulate_frontend(&fleet(1, 10.0), &FirstIdle, &AdmitAll, &bad_frac).unwrap_err(),
            FrontendError::BadConfig(_)
        ));
        let bad_fault = base.clone().faults(FaultPlan::new(vec![Fault::FailStop {
            shard: 9,
            at_us: 0.0,
            down_us: 1.0,
        }]));
        assert!(matches!(
            simulate_frontend(&fleet(1, 10.0), &FirstIdle, &AdmitAll, &bad_fault).unwrap_err(),
            FrontendError::BadConfig(_)
        ));
        let bad_scale = base
            .clone()
            .autoscale(AutoscaleConfig::new(1, 8, 1000.0, 100.0));
        assert!(matches!(
            simulate_frontend(&fleet(2, 10.0), &FirstIdle, &AdmitAll, &bad_scale).unwrap_err(),
            FrontendError::BadConfig(_)
        ));
        let mut bad_degrade = base.clone();
        bad_degrade.degrade_factor = 0.0;
        assert!(matches!(
            simulate_frontend(&fleet(1, 10.0), &FirstIdle, &AdmitAll, &bad_degrade).unwrap_err(),
            FrontendError::BadConfig(_)
        ));
        for bad in [
            DegradeBatching::new(0, 100.0, 0.5),
            DegradeBatching::new(4, f64::NAN, 0.5),
            DegradeBatching::new(4, 100.0, 0.0),
            DegradeBatching::new(4, 100.0, 1.5),
        ] {
            let cfg = base.clone().degrade_batching(bad);
            assert!(
                matches!(
                    simulate_frontend(&fleet(1, 10.0), &FirstIdle, &AdmitAll, &cfg).unwrap_err(),
                    FrontendError::BadConfig(_)
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn degrade_batching_amortizes_low_priority_overload() {
        // 2 × 100k rps capacity, 300k offered, half low-priority; the
        // gate degrades every low request. Unbatched, each degraded
        // request costs 0.5×; batched, a full batch of 4 costs
        // (1 + 0.2 × 3) / 4 = 0.4× per member — and buffered requests
        // don't count as waiting, so the low queue sheds less.
        let w = Workload::Poisson {
            rate_rps: 300_000.0,
            requests: 3000,
            seed: 17,
        };
        let gate = BoundedQueues::new(64, 32).degrade_low_beyond(0);
        let base = FrontendConfig::new(w, slo()).low_fraction(0.5);
        let batched_cfg = base
            .clone()
            .degrade_batching(DegradeBatching::new(4, 200.0, 0.2));
        let fleet = fleet(2, 10.0);
        let plain = simulate_frontend(&fleet, &LeastQueued, &gate, &base).unwrap();
        let batched = simulate_frontend(&fleet, &LeastQueued, &gate, &batched_cfg).unwrap();

        assert_eq!(plain.degrade_batches, 0, "no batching unless configured");
        assert!(batched.degrade_batches > 0, "degrade tier must batch");
        assert!(
            batched.mean_degrade_batch > 1.5,
            "overload must gather real batches, got mean {}",
            batched.mean_degrade_batch
        );
        assert!(batched.max_degrade_batch <= 4, "fills cap the batch");
        // Every degraded request rides exactly one flushed batch.
        let flushed =
            (batched.mean_degrade_batch * batched.degrade_batches as f64).round() as usize;
        assert_eq!(flushed, batched.class(Priority::Low).degraded);
        // The amortized tier serves more of the low class than the flat
        // degrade discount does.
        assert!(
            batched.class(Priority::Low).completed >= plain.class(Priority::Low).completed,
            "batching must not lose low-class capacity: {} vs {}",
            batched.class(Priority::Low).completed,
            plain.class(Priority::Low).completed
        );
    }

    #[test]
    fn partial_degrade_batches_flush_at_the_deadline() {
        // Light load: low arrivals are ~170 µs apart, so an 8-slot
        // buffer with a 300 µs deadline almost never fills — partial
        // batches must still flush when the oldest member times out,
        // and the hold shows up as added low-class latency.
        let w = Workload::Poisson {
            rate_rps: 20_000.0,
            requests: 800,
            seed: 23,
        };
        let loose = SloPolicy {
            high_us: 100.0,
            low_us: 2_000.0,
        };
        let gate = BoundedQueues::new(64, 32).degrade_low_beyond(0);
        let base = FrontendConfig::new(w, loose).low_fraction(0.3);
        let batched_cfg = base
            .clone()
            .degrade_batching(DegradeBatching::new(8, 300.0, 0.25));
        let fleet = fleet(2, 10.0);
        let plain = simulate_frontend(&fleet, &LeastQueued, &gate, &base).unwrap();
        let batched = simulate_frontend(&fleet, &LeastQueued, &gate, &batched_cfg).unwrap();

        assert!(batched.degrade_batches > 0);
        assert!(
            batched.mean_degrade_batch < 8.0,
            "light load cannot keep filling the buffer, got mean {}",
            batched.mean_degrade_batch
        );
        // Nothing starves in the buffer: the whole low class completes.
        let low = batched.class(Priority::Low);
        assert_eq!(low.completed, low.offered, "deadline flushes everyone");
        // The hold window is the visible price of batching.
        assert!(
            low.latency.mean_us > plain.class(Priority::Low).latency.mean_us + 50.0,
            "holding for the batch must cost latency: {} vs {}",
            low.latency.mean_us,
            plain.class(Priority::Low).latency.mean_us
        );
        // ...but stays bounded by the deadline plus queueing/service.
        assert!(
            low.latency.max_us < 300.0 + 1_000.0,
            "no one waits past the flush deadline plus real work, got {}",
            low.latency.max_us
        );
    }

    #[test]
    fn hedge_cancellations_and_retry_wins_are_counted() {
        // Hedge at half the service time on a healthy fleet: the primary
        // is mid-service when the duplicate dispatches, finishes first,
        // and the losing hedge is cancelled.
        let hedged = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 50_000.0,
                requests: 2000,
                seed: 11,
            },
            slo(),
        )
        .hedge(HedgeConfig::hedged(5.0));
        let s = simulate_frontend(&fleet(3, 10.0), &FirstIdle, &AdmitAll, &hedged).unwrap();
        assert!(s.hedges_cancelled > 0, "losing hedges must be counted");
        assert!(s.hedges_cancelled <= s.cancelled_attempts);
        assert!(s.hedges_cancelled <= s.hedges_issued);
        // Every issued hedge either wins (cancelling the primary) or is
        // itself cancelled, so each accounts for one cancellation.
        assert_eq!(s.cancelled_attempts, s.hedges_issued);
        assert_eq!(s.retry_wins, 0, "no fail-stops, no retries");

        // Retry-only fail-stop run: every lost request is saved by a
        // retry, and with no hedging the winning attempt of each saved
        // request *is* the retry.
        let retry = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 190_000.0,
                requests: 3000,
                seed: 7,
            },
            slo(),
        )
        .faults(FaultPlan::new(vec![Fault::FailStop {
            shard: 0,
            at_us: 3_000.0,
            down_us: 8_000.0,
        }]))
        .hedge(HedgeConfig::retries_only());
        let s = simulate_frontend(&fleet(2, 10.0), &LeastQueued, &AdmitAll, &retry).unwrap();
        assert!(s.retry_wins > 0, "retried requests complete via the retry");
        assert!(s.retry_wins <= s.retries);
        assert_eq!(s.hedges_cancelled, 0, "no hedging in this run");
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_every_request() {
        use sparsenn_obs::{check_nesting, chrome_trace, RingRecorder};

        // Hedging + a straggler + degrade/shed pressure: every span
        // kind the front end can emit shows up in one run.
        let cfg = FrontendConfig::new(
            Workload::Poisson {
                rate_rps: 230_000.0,
                requests: 2000,
                seed: 11,
            },
            slo(),
        )
        .low_fraction(0.4)
        .faults(FaultPlan::new(vec![Fault::Slowdown {
            shard: 0,
            at_us: 1_000.0,
            for_us: 10_000.0,
            factor: 20.0,
        }]))
        .hedge(HedgeConfig::hedged(60.0));
        let gate = BoundedQueues::new(12, 4).degrade_low_beyond(2);
        let fleet = fleet(2, 10.0);

        let plain = simulate_frontend(&fleet, &LeastQueued, &gate, &cfg).unwrap();
        let recorder = RingRecorder::new(1 << 16);
        let traced =
            simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &recorder).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb the simulation");

        let spans = recorder.spans();
        assert_eq!(recorder.dropped(), 0, "ring sized for the whole run");
        assert_eq!(check_nesting(&spans), None);

        // Every offered request resolves exactly once → exactly one
        // Request span per request, ids covering 0..requests.
        let mut request_ids: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Request)
            .map(|s| s.trace_id)
            .collect();
        request_ids.sort_unstable();
        let expect: Vec<u64> = (0..plain.requests as u64).collect();
        assert_eq!(request_ids, expect);

        // Admission verdicts partition the offered load.
        let count = |kind: SpanKind| spans.iter().filter(|s| s.kind == kind).count();
        let admitted: usize = plain.classes.iter().map(|c| c.admitted).sum();
        let degraded: usize = plain.classes.iter().map(|c| c.degraded).sum();
        let shed: usize = plain.classes.iter().map(|c| c.shed).sum();
        assert_eq!(count(SpanKind::Admit), admitted);
        assert_eq!(count(SpanKind::Degrade), degraded);
        assert_eq!(count(SpanKind::Shed), shed);
        assert!(shed > 0, "overload against bounded queues must shed");
        assert_eq!(count(SpanKind::Hedge), plain.hedges_issued);
        assert_eq!(count(SpanKind::Cancel), plain.cancelled_attempts);
        assert!(count(SpanKind::Queued) > 0);
        assert!(count(SpanKind::Attempt) > 0);

        // Same seed, fresh recorder: byte-identical export.
        let again = RingRecorder::new(1 << 16);
        simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &again).unwrap();
        assert_eq!(chrome_trace(&spans), chrome_trace(&again.spans()));
    }
}
