//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! Provides a deterministic [`rngs::StdRng`] backed by xoshiro256++ with
//! SplitMix64 seeding, the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`]. The generated stream differs from
//! crates.io `StdRng` (ChaCha12), but everything downstream only requires
//! a statistically sound, seed-reproducible source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from the full/unit range of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`lo < hi` checked by the caller).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for simulation use.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f32::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

/// The user-facing generator extension trait (the `rand 0.8` names).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.25);
            assert!((-0.5..0.25).contains(&f));
            let b = rng.gen_range(0u8..100);
            assert!(b < 100);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
