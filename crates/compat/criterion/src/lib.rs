//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! micro-benchmarks use: [`Criterion`], [`Criterion::benchmark_group`],
//! `bench_function`, `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up briefly, then timed for a fixed wall-clock budget; the mean
//! ns/iteration is printed. No statistics, plots or saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched setup cost relates to the routine (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh batch every iteration.
    PerIteration,
}

/// Times closures handed to `bench_function`.
pub struct Bencher {
    /// Accumulated measured time.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Wall-clock measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warm-up so one-time effects (allocator, caches) settle.
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`iter`](Self::iter), with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let wall = Instant::now();
        while wall.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a time budget
    /// instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Small budget: the stand-in is a smoke-timer, not a statistics
        // engine. SPARSENN_BENCH_MS overrides (e.g. 2000 for stabler means).
        let ms = std::env::var("SPARSENN_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Self {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        let name = id.into();
        self.run_one(&name, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<44} (no iterations completed)");
        } else {
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!("{name:<44} {ns:>14.1} ns/iter ({} iters)", b.iters);
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters > 0);
        b.iter_batched(|| 1u64, |x| x + 1, BatchSize::SmallInput);
    }

    #[test]
    fn group_api_shape_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
