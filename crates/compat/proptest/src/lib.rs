//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`arbitrary::any`], `prop::collection::vec`, and
//! [`test_runner::ProptestConfig`]. Sampling is uniform and deterministic
//! per test (seeded from the test name); there is **no shrinking** — a
//! failing case panics immediately with its case number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: config, RNG and failure plumbing.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A test-case failure (produced by `prop_assert!` and friends).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic sampling RNG (xoshiro256++, seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for a named test: same name, same stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable 64-bit seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            Self { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform usize in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

/// `any::<T>()` — the full-range strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Samples from the full range of the type.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// The `prop::…` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specifications accepted by [`vec`]: an exact `usize` or a
        /// half-open `Range<usize>`.
        pub trait IntoSizeRange {
            /// Samples a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for std::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty vec length range");
                self.start + rng.below(self.end - self.start)
            }
        }

        /// Strategy for `Vec<T>` with element strategy `S` and length `L`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `Vec` strategy from an element strategy and a length spec.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test file usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("case {}/{} of `{}` failed: {}", case + 1, cfg.cases, stringify!($name), e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. The stand-in counts a skipped case as run (no resampling),
/// which only thins coverage slightly for rarely-failing assumptions.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..17, b in -2.5f32..2.5, c in 1u64..=9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..=9).contains(&c));
        }

        /// Mapping and flat-mapping compose.
        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u8..10, 2..6),
            (m, n) in (1usize..4, 1usize..4),
            doubled in (0u32..50).prop_map(|x| x * 2),
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i16..5, n)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(m < 4 && n < 4);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(!w.is_empty() && w.len() < 4);
        }

        /// `any` covers signs for i16.
        #[test]
        fn any_i16_in_range(x in any::<i16>()) {
            let _ = x; // full range by construction
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
