//! Image rendering helpers: ASCII previews and PGM export.
//!
//! Synthetic datasets need eyeballing — a generator bug (digits off-grid,
//! background washing out the strokes) would silently invalidate every
//! downstream experiment. These helpers make the images inspectable from
//! a terminal (`to_ascii`) or any image viewer (`to_pgm`).

use crate::{IMAGE_PIXELS, IMAGE_SIDE};

/// Intensity ramp used for ASCII rendering, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a 28×28 image as ASCII art, one character per pixel.
///
/// # Panics
///
/// Panics if `img.len() != 784`.
///
/// # Example
///
/// ```
/// use sparsenn_datasets::{render_digit, to_ascii, Affine, GlyphStyle};
/// let img = render_digit(7, &Affine::identity(), &GlyphStyle::default());
/// let art = to_ascii(&img);
/// assert_eq!(art.lines().count(), 28);
/// assert!(art.contains('@'), "stroke pixels render bright");
/// ```
pub fn to_ascii(img: &[f32]) -> String {
    assert_eq!(img.len(), IMAGE_PIXELS, "expected a 28x28 image");
    let mut out = String::with_capacity((IMAGE_SIDE + 1) * IMAGE_SIDE);
    for row in 0..IMAGE_SIDE {
        for col in 0..IMAGE_SIDE {
            let v = img[row * IMAGE_SIDE + col].clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Encodes a 28×28 image as a binary PGM (P5) file body.
///
/// # Panics
///
/// Panics if `img.len() != 784`.
pub fn to_pgm(img: &[f32]) -> Vec<u8> {
    assert_eq!(img.len(), IMAGE_PIXELS, "expected a 28x28 image");
    let mut out = format!("P5\n{IMAGE_SIDE} {IMAGE_SIDE}\n255\n").into_bytes();
    out.extend(
        img.iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render_digit, Affine, GlyphStyle};

    fn digit() -> Vec<f32> {
        render_digit(3, &Affine::identity(), &GlyphStyle::default())
    }

    #[test]
    fn ascii_has_grid_shape_and_contrast() {
        let art = to_ascii(&digit());
        assert_eq!(art.lines().count(), IMAGE_SIDE);
        assert!(art.lines().all(|l| l.chars().count() == IMAGE_SIDE));
        assert!(
            art.contains(' ') && art.contains('@'),
            "needs background and ink"
        );
    }

    #[test]
    fn pgm_header_and_size() {
        let pgm = to_pgm(&digit());
        assert!(pgm.starts_with(b"P5\n28 28\n255\n"));
        assert_eq!(pgm.len(), b"P5\n28 28\n255\n".len() + IMAGE_PIXELS);
    }

    #[test]
    fn pgm_values_track_intensity() {
        let img = digit();
        let pgm = to_pgm(&img);
        let body = &pgm[pgm.len() - IMAGE_PIXELS..];
        let brightest = img
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(body[brightest] > 200);
    }

    #[test]
    #[should_panic(expected = "28x28")]
    fn wrong_size_panics() {
        to_ascii(&[0.0; 10]);
    }
}
