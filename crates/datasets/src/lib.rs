//! Synthetic MNIST-BASIC / ROT / BG-RAND dataset generators.
//!
//! The paper evaluates on the MNIST variants of Larochelle et al. (ICML
//! 2007): the plain digits (**BASIC**), digits rotated by a uniform random
//! angle (**ROT**) and digits superimposed on uniform random backgrounds
//! (**BG-RAND**). The original `.amat` files are not redistributable /
//! available offline, so this crate *synthesizes* equivalent datasets: each
//! digit class is a parametric set of strokes, rasterized at 28×28 with
//! random affine jitter, then transformed per variant.
//!
//! What the substitution preserves (and why it is sufficient for the
//! paper's experiments — see `DESIGN.md` §2):
//!
//! * class-conditional structure — a classifier must learn real shape
//!   features, and harder variants yield higher test error;
//! * the **difficulty ordering** BASIC < ROT / BG-RAND (rotation removes
//!   orientation cues; background noise buries faint stroke pixels);
//! * the **input-sparsity profile**: BASIC and ROT images are mostly zeros
//!   (like MNIST's ≈ 80 % zero pixels) while BG-RAND images are dense —
//!   the exact property that makes BG-RAND's first hidden layer the most
//!   expensive in Fig. 7 of the paper.
//!
//! # Example
//!
//! ```
//! use sparsenn_datasets::{DatasetKind, DatasetSpec};
//!
//! let spec = DatasetSpec { kind: DatasetKind::Basic, train: 64, test: 32, seed: 1 };
//! let split = spec.generate();
//! assert_eq!(split.train.len(), 64);
//! assert_eq!(split.test.len(), 32);
//! // BASIC images are sparse, like real MNIST.
//! assert!(split.train.input_sparsity() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod generator;
mod glyph;
mod render;
mod transform;

pub use dataset::{Dataset, SplitDataset};
pub use generator::{DatasetKind, DatasetSpec};
pub use glyph::{render_digit, GlyphStyle};
pub use render::{to_ascii, to_pgm};
pub use transform::Affine;

/// Side length of every generated image (28 × 28, like MNIST).
pub const IMAGE_SIDE: usize = 28;

/// Number of pixels per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;
