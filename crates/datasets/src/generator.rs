//! Dataset generation: BASIC, ROT and BG-RAND variants.

use crate::dataset::{Dataset, SplitDataset};
use crate::glyph::{render_digit, GlyphStyle};
use crate::transform::Affine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// Which MNIST variant to synthesize (Larochelle et al. 2007 naming).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetKind {
    /// Plain digits with mild affine jitter (`mnist-basic`).
    Basic,
    /// Digits rotated by a uniform random angle in `[0, 2π)` (`mnist-rot`).
    Rot,
    /// Digits superimposed on uniform random background noise
    /// (`mnist-back-rand`) — destroys input sparsity.
    BgRand,
}

impl DatasetKind {
    /// All three variants, in the order the paper's figures list them.
    pub const ALL: [DatasetKind; 3] = [DatasetKind::Basic, DatasetKind::BgRand, DatasetKind::Rot];
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Basic => "basic",
            DatasetKind::Rot => "rot",
            DatasetKind::BgRand => "bg_rand",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`DatasetKind`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDatasetKindError(String);

impl fmt::Display for ParseDatasetKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown dataset kind `{}` (expected basic, rot or bg_rand)",
            self.0
        )
    }
}

impl std::error::Error for ParseDatasetKindError {}

impl FromStr for DatasetKind {
    type Err = ParseDatasetKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "basic" | "mnist-basic" => Ok(DatasetKind::Basic),
            "rot" | "mnist-rot" => Ok(DatasetKind::Rot),
            "bg_rand" | "bg-rand" | "bgrand" | "mnist-back-rand" => Ok(DatasetKind::BgRand),
            other => Err(ParseDatasetKindError(other.to_owned())),
        }
    }
}

/// A complete specification of a dataset to generate; equal specs generate
/// bit-identical datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DatasetSpec {
    /// Variant to generate.
    pub kind: DatasetKind,
    /// Number of training samples.
    pub train: usize,
    /// Number of held-out test samples.
    pub test: usize,
    /// RNG seed; train and test streams are derived from it.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the train/test split.
    ///
    /// # Example
    ///
    /// ```
    /// use sparsenn_datasets::{DatasetKind, DatasetSpec};
    /// let split = DatasetSpec { kind: DatasetKind::Rot, train: 10, test: 5, seed: 3 }.generate();
    /// assert_eq!(split.train.len(), 10);
    /// ```
    pub fn generate(&self) -> SplitDataset {
        // Distinct, kind-tagged streams so train/test never overlap and
        // variants differ even with equal seeds.
        let tag = match self.kind {
            DatasetKind::Basic => 0x1000_0000u64,
            DatasetKind::Rot => 0x2000_0000,
            DatasetKind::BgRand => 0x3000_0000,
        };
        let train = generate_portion(self.kind, self.train, self.seed ^ tag ^ 0xAAAA);
        let test = generate_portion(self.kind, self.test, self.seed ^ tag ^ 0x5555_0000);
        SplitDataset { train, test }
    }
}

/// Maximum brightness of BG-RAND background pixels. High enough to bury the
/// anti-aliased stroke edges (making the task hard and the input dense),
/// low enough that stroke cores stay visible.
const BG_NOISE_MAX: f32 = 0.85;

fn generate_portion(kind: DatasetKind, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        // Balanced classes in round-robin order; the RNG drives everything else.
        let digit = (i % crate::NUM_CLASSES) as u8;
        let style = GlyphStyle {
            thickness: rng.gen_range(0.035..0.060),
            softness: rng.gen_range(0.025..0.040),
            intensity: rng.gen_range(0.80..1.0),
        };
        // Mild jitter for every variant.
        let jitter = Affine::jitter(
            rng.gen_range(-0.12..0.12),
            rng.gen_range(0.85..1.12),
            rng.gen_range(0.85..1.12),
            rng.gen_range(-0.15..0.15),
            rng.gen_range(-0.06..0.06),
            rng.gen_range(-0.06..0.06),
        );
        let xf = match kind {
            DatasetKind::Rot => {
                let theta = rng.gen_range(0.0..(2.0 * std::f32::consts::PI));
                jitter.compose(&Affine::rotation(theta))
            }
            _ => jitter,
        };
        let mut img = render_digit(digit, &xf, &style);
        if kind == DatasetKind::BgRand {
            for p in &mut img {
                let noise: f32 = rng.gen_range(0.0..BG_NOISE_MAX);
                *p = p.max(noise);
            }
        }
        images.push(img);
        labels.push(digit);
    }
    Dataset::new(kind, images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: DatasetKind) -> DatasetSpec {
        DatasetSpec {
            kind,
            train: 60,
            test: 30,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec(DatasetKind::Rot).generate();
        let b = spec(DatasetKind::Rot).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec(DatasetKind::Basic).generate();
        let b = DatasetSpec {
            seed: 8,
            ..spec(DatasetKind::Basic)
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn train_and_test_do_not_alias() {
        let s = spec(DatasetKind::Basic).generate();
        assert_ne!(s.train.image(0), s.test.image(0));
    }

    #[test]
    fn classes_are_balanced() {
        let s = spec(DatasetKind::Basic).generate();
        let h = s.train.class_histogram();
        assert!(h.iter().all(|&c| c == 6), "{h:?}");
    }

    #[test]
    fn basic_and_rot_are_sparse_bg_rand_is_dense() {
        let basic = spec(DatasetKind::Basic).generate().train;
        let rot = spec(DatasetKind::Rot).generate().train;
        let bg = spec(DatasetKind::BgRand).generate().train;
        assert!(
            basic.input_sparsity() > 0.55,
            "basic sparsity {}",
            basic.input_sparsity()
        );
        assert!(
            rot.input_sparsity() > 0.55,
            "rot sparsity {}",
            rot.input_sparsity()
        );
        assert!(
            bg.input_sparsity() < 0.02,
            "bg_rand sparsity {}",
            bg.input_sparsity()
        );
    }

    #[test]
    fn pixel_range_is_unit_interval() {
        for kind in DatasetKind::ALL {
            let d = spec(kind).generate().train;
            for (img, _) in d.iter() {
                assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn kind_roundtrips_through_strings() {
        for kind in DatasetKind::ALL {
            let s = kind.to_string();
            assert_eq!(s.parse::<DatasetKind>().unwrap(), kind);
        }
        assert!("nope".parse::<DatasetKind>().is_err());
    }
}
