//! In-memory dataset containers.

use crate::generator::DatasetKind;
use crate::{IMAGE_PIXELS, NUM_CLASSES};
use std::fmt;

/// A labelled image dataset (all images 28×28, row-major `f32` in `[0,1]`).
#[derive(Clone, PartialEq)]
pub struct Dataset {
    kind: DatasetKind,
    images: Vec<Vec<f32>>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Builds a dataset from parallel image/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length, an image is not 784 pixels,
    /// or a label is ≥ 10.
    pub fn new(kind: DatasetKind, images: Vec<Vec<f32>>, labels: Vec<u8>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(
            images.iter().all(|i| i.len() == IMAGE_PIXELS),
            "image size mismatch"
        );
        assert!(
            labels.iter().all(|&l| (l as usize) < NUM_CLASSES),
            "label out of range"
        );
        Self {
            kind,
            images,
            labels,
        }
    }

    /// Which variant generated this dataset.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The `i`-th image (784 pixels, row-major).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i]
    }

    /// The `i`-th label (0–9).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// Iterator over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u8)> + '_ {
        self.images
            .iter()
            .map(|i| i.as_slice())
            .zip(self.labels.iter().copied())
    }

    /// Mean fraction of exactly-zero pixels — the *input activation
    /// sparsity* of the network's first layer, the quantity EIE-style
    /// accelerators exploit.
    pub fn input_sparsity(&self) -> f32 {
        if self.images.is_empty() {
            return 0.0;
        }
        let zeros: usize = self
            .images
            .iter()
            .map(|img| img.iter().filter(|&&p| p == 0.0).count())
            .sum();
        zeros as f32 / (self.images.len() * IMAGE_PIXELS) as f32
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> [usize; NUM_CLASSES] {
        let mut h = [0usize; NUM_CLASSES];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({:?}, {} samples, input sparsity {:.1}%)",
            self.kind,
            self.len(),
            self.input_sparsity() * 100.0
        )
    }
}

/// A train/test split of a generated dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct SplitDataset {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion (used for TER measurements).
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            DatasetKind::Basic,
            vec![vec![0.0; IMAGE_PIXELS], vec![1.0; IMAGE_PIXELS]],
            vec![3, 7],
        )
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.label(1), 7);
        assert_eq!(d.image(0).len(), IMAGE_PIXELS);
        assert_eq!(d.kind(), DatasetKind::Basic);
    }

    #[test]
    fn sparsity_is_mean_zero_fraction() {
        let d = tiny();
        assert_eq!(d.input_sparsity(), 0.5);
    }

    #[test]
    fn histogram_counts_labels() {
        let h = tiny().class_histogram();
        assert_eq!(h[3], 1);
        assert_eq!(h[7], 1);
        assert_eq!(h.iter().sum::<usize>(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(
            DatasetKind::Basic,
            vec![vec![0.0; IMAGE_PIXELS]],
            vec![1, 2],
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        Dataset::new(DatasetKind::Basic, vec![vec![0.0; IMAGE_PIXELS]], vec![10]);
    }
}
