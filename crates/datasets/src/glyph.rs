//! Parametric digit glyphs and their rasterizer.
//!
//! Each digit class 0–9 is described by a small set of polyline strokes in a
//! unit box. Rasterization computes, for each pixel, the distance to the
//! nearest stroke segment and converts it to intensity with a soft edge —
//! a cheap analytic signed-distance-field renderer. The result looks like a
//! clean handwritten digit and, crucially for this reproduction, has the
//! same ink-to-background ratio (≈ 15–25 % nonzero pixels) as real MNIST.

use crate::transform::Affine;
use crate::{IMAGE_PIXELS, IMAGE_SIDE};

/// Rendering style knobs for a digit glyph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlyphStyle {
    /// Stroke half-width in unit-box coordinates (≈ pixels / 28).
    pub thickness: f32,
    /// Width of the anti-aliased edge falloff.
    pub softness: f32,
    /// Peak ink intensity (multiplies the whole glyph).
    pub intensity: f32,
}

impl Default for GlyphStyle {
    fn default() -> Self {
        Self {
            thickness: 0.045,
            softness: 0.035,
            intensity: 1.0,
        }
    }
}

/// A polyline stroke in unit-box coordinates.
type Stroke = Vec<(f32, f32)>;

/// Approximates a circular arc with a polyline.
///
/// `(cx, cy)` center, `r` radius, angles in radians, `n` segments.
fn arc(cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize) -> Stroke {
    (0..=n)
        .map(|i| {
            let t = a0 + (a1 - a0) * (i as f32) / (n as f32);
            (cx + rx * t.cos(), cy + ry * t.sin())
        })
        .collect()
}

/// Straight segment.
fn seg(x0: f32, y0: f32, x1: f32, y1: f32) -> Stroke {
    vec![(x0, y0), (x1, y1)]
}

use std::f32::consts::PI;

/// The stroke templates for digits 0–9, in a unit box with `y` growing
/// downward (screen convention). Hand-tuned to look like clean digits.
fn strokes_for(digit: u8) -> Vec<Stroke> {
    match digit {
        0 => vec![arc(0.5, 0.5, 0.26, 0.36, 0.0, 2.0 * PI, 24)],
        1 => vec![seg(0.5, 0.12, 0.5, 0.88), seg(0.5, 0.12, 0.36, 0.28)],
        2 => vec![
            arc(0.5, 0.32, 0.24, 0.20, -PI, 0.35, 14),
            seg(0.70, 0.44, 0.28, 0.86),
            seg(0.28, 0.86, 0.76, 0.86),
        ],
        3 => vec![
            arc(0.48, 0.32, 0.22, 0.19, -PI * 0.9, PI * 0.5, 14),
            arc(0.48, 0.68, 0.24, 0.20, -PI * 0.5, PI * 0.9, 14),
        ],
        4 => vec![
            seg(0.62, 0.12, 0.24, 0.62),
            seg(0.24, 0.62, 0.80, 0.62),
            seg(0.62, 0.12, 0.62, 0.88),
        ],
        5 => vec![
            seg(0.72, 0.14, 0.32, 0.14),
            seg(0.32, 0.14, 0.30, 0.46),
            arc(0.48, 0.64, 0.24, 0.22, -PI * 0.55, PI * 0.75, 16),
        ],
        6 => vec![
            arc(0.52, 0.30, 0.22, 0.26, -PI * 0.85, -PI * 0.25, 10),
            seg(0.34, 0.26, 0.28, 0.62),
            arc(0.50, 0.66, 0.22, 0.20, 0.0, 2.0 * PI, 20),
        ],
        7 => vec![seg(0.26, 0.14, 0.76, 0.14), seg(0.76, 0.14, 0.42, 0.88)],
        8 => vec![
            arc(0.5, 0.32, 0.20, 0.18, 0.0, 2.0 * PI, 18),
            arc(0.5, 0.68, 0.24, 0.20, 0.0, 2.0 * PI, 18),
        ],
        9 => vec![
            arc(0.50, 0.34, 0.22, 0.20, 0.0, 2.0 * PI, 20),
            seg(0.72, 0.34, 0.62, 0.88),
        ],
        _ => panic!("digit out of range: {digit}"),
    }
}

/// Squared distance from point `p` to segment `(a, b)`.
fn dist2_to_segment(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 > 0.0 {
        ((px - ax) * dx + (py - ay) * dy) / len2
    } else {
        0.0
    };
    let t = t.clamp(0.0, 1.0);
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    (px - cx) * (px - cx) + (py - cy) * (py - cy)
}

/// Renders digit `digit` through the affine transform `xf` into a 28×28
/// image (row-major, values in `[0, 1]`).
///
/// The transform is applied to the *strokes* (forward mapping), so arbitrary
/// rotations never produce resampling holes.
///
/// # Panics
///
/// Panics if `digit > 9`.
///
/// # Example
///
/// ```
/// use sparsenn_datasets::{render_digit, Affine, GlyphStyle};
/// let img = render_digit(3, &Affine::identity(), &GlyphStyle::default());
/// assert_eq!(img.len(), 28 * 28);
/// assert!(img.iter().any(|&p| p > 0.5)); // some ink
/// assert!(img.iter().filter(|&&p| p == 0.0).count() > 400); // mostly background
/// ```
pub fn render_digit(digit: u8, xf: &Affine, style: &GlyphStyle) -> Vec<f32> {
    let strokes: Vec<Stroke> = strokes_for(digit)
        .into_iter()
        .map(|s| s.iter().map(|&p| xf.apply(p)).collect())
        .collect();

    let mut img = vec![0.0f32; IMAGE_PIXELS];
    // Distance beyond which a pixel cannot receive ink.
    let reach = style.thickness + style.softness;
    let reach2 = reach * reach;
    for (idx, px) in img.iter_mut().enumerate() {
        let x = ((idx % IMAGE_SIDE) as f32 + 0.5) / IMAGE_SIDE as f32;
        let y = ((idx / IMAGE_SIDE) as f32 + 0.5) / IMAGE_SIDE as f32;
        let mut best = f32::INFINITY;
        for stroke in &strokes {
            for pair in stroke.windows(2) {
                let d2 = dist2_to_segment((x, y), pair[0], pair[1]);
                if d2 < best {
                    best = d2;
                }
            }
        }
        if best <= reach2 {
            let d = best.sqrt();
            let v = ((reach - d) / style.softness).clamp(0.0, 1.0);
            *px = (v * style.intensity).clamp(0.0, 1.0);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ink_fraction(img: &[f32]) -> f32 {
        img.iter().filter(|&&p| p > 0.0).count() as f32 / img.len() as f32
    }

    #[test]
    fn every_digit_renders_with_plausible_ink() {
        for d in 0..10u8 {
            let img = render_digit(d, &Affine::identity(), &GlyphStyle::default());
            let ink = ink_fraction(&img);
            assert!(
                (0.05..0.45).contains(&ink),
                "digit {d} has ink fraction {ink}, outside MNIST-like range"
            );
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn digits_are_mutually_distinct() {
        let imgs: Vec<Vec<f32>> = (0..10u8)
            .map(|d| render_digit(d, &Affine::identity(), &GlyphStyle::default()))
            .collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let dist: f32 = imgs[i]
                    .iter()
                    .zip(&imgs[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                assert!(
                    dist > 1.0,
                    "digits {i} and {j} are too similar (L2 = {dist})"
                );
            }
        }
    }

    #[test]
    fn thicker_style_means_more_ink() {
        let thin = GlyphStyle {
            thickness: 0.03,
            ..GlyphStyle::default()
        };
        let thick = GlyphStyle {
            thickness: 0.07,
            ..GlyphStyle::default()
        };
        let a = ink_fraction(&render_digit(0, &Affine::identity(), &thin));
        let b = ink_fraction(&render_digit(0, &Affine::identity(), &thick));
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn digit_out_of_range_panics() {
        render_digit(10, &Affine::identity(), &GlyphStyle::default());
    }

    #[test]
    fn intensity_scales_peak() {
        let dim = GlyphStyle {
            intensity: 0.5,
            ..GlyphStyle::default()
        };
        let img = render_digit(1, &Affine::identity(), &dim);
        let max = img.iter().cloned().fold(0.0f32, f32::max);
        assert!((max - 0.5).abs() < 1e-6);
    }
}
