//! 2-D affine transforms applied to glyph strokes.

/// A 2-D affine transform `p ↦ A·(p − c) + c + t` about the box center
/// `c = (0.5, 0.5)`.
///
/// Composed from rotation, anisotropic scale, shear and translation — the
/// jitter applied to every generated sample, plus the full-circle rotation
/// of the ROT variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Affine {
    a00: f32,
    a01: f32,
    a10: f32,
    a11: f32,
    tx: f32,
    ty: f32,
}

impl Affine {
    /// The identity transform.
    pub fn identity() -> Self {
        Self {
            a00: 1.0,
            a01: 0.0,
            a10: 0.0,
            a11: 1.0,
            tx: 0.0,
            ty: 0.0,
        }
    }

    /// Builds a jitter transform: rotate by `theta`, scale by
    /// `(sx, sy)`, shear by `k`, then translate by `(tx, ty)` (unit-box
    /// units), all about the box center.
    pub fn jitter(theta: f32, sx: f32, sy: f32, k: f32, tx: f32, ty: f32) -> Self {
        let (sin, cos) = theta.sin_cos();
        // R · Shear · Scale
        let (m00, m01) = (cos, -sin);
        let (m10, m11) = (sin, cos);
        // Shear in x by k: [[1, k], [0, 1]]
        let (s00, s01, s10, s11) = (m00, m00 * k + m01, m10, m10 * k + m11);
        Self {
            a00: s00 * sx,
            a01: s01 * sy,
            a10: s10 * sx,
            a11: s11 * sy,
            tx,
            ty,
        }
    }

    /// Pure rotation by `theta` about the box center.
    pub fn rotation(theta: f32) -> Self {
        Self::jitter(theta, 1.0, 1.0, 0.0, 0.0, 0.0)
    }

    /// Applies the transform to a point in unit-box coordinates.
    pub fn apply(&self, p: (f32, f32)) -> (f32, f32) {
        let (x, y) = (p.0 - 0.5, p.1 - 0.5);
        (
            self.a00 * x + self.a01 * y + 0.5 + self.tx,
            self.a10 * x + self.a11 * y + 0.5 + self.ty,
        )
    }

    /// Composes `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Affine) -> Affine {
        // Both maps are x ↦ A(x−c)+c+t; compose the linear parts and fold
        // the offsets.
        let a00 = self.a00 * other.a00 + self.a01 * other.a10;
        let a01 = self.a00 * other.a01 + self.a01 * other.a11;
        let a10 = self.a10 * other.a00 + self.a11 * other.a10;
        let a11 = self.a10 * other.a01 + self.a11 * other.a11;
        // other: q = B(x−c)+c+u ; self: A(q−c)+c+t = A·B(x−c) + A·u + c + t
        let tx = self.a00 * other.tx + self.a01 * other.ty + self.tx;
        let ty = self.a10 * other.tx + self.a11 * other.ty + self.ty;
        Affine {
            a00,
            a01,
            a10,
            a11,
            tx,
            ty,
        }
    }
}

impl Default for Affine {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: (f32, f32), b: (f32, f32)) -> bool {
        (a.0 - b.0).abs() < 1e-5 && (a.1 - b.1).abs() < 1e-5
    }

    #[test]
    fn identity_fixes_points() {
        let id = Affine::identity();
        assert!(close(id.apply((0.3, 0.7)), (0.3, 0.7)));
    }

    #[test]
    fn rotation_fixes_center() {
        let r = Affine::rotation(1.234);
        assert!(close(r.apply((0.5, 0.5)), (0.5, 0.5)));
    }

    #[test]
    fn quarter_turn_moves_axis_point() {
        let r = Affine::rotation(std::f32::consts::FRAC_PI_2);
        // (1, 0.5) is (0.5, 0) from center; rotating by 90° gives (0, 0.5).
        assert!(close(r.apply((1.0, 0.5)), (0.5, 1.0)));
    }

    #[test]
    fn rotation_preserves_distance_from_center() {
        let r = Affine::rotation(0.77);
        let p = (0.9, 0.3);
        let q = r.apply(p);
        let d0 = ((p.0 - 0.5).powi(2) + (p.1 - 0.5).powi(2)).sqrt();
        let d1 = ((q.0 - 0.5).powi(2) + (q.1 - 0.5).powi(2)).sqrt();
        assert!((d0 - d1).abs() < 1e-5);
    }

    #[test]
    fn translation_shifts() {
        let t = Affine::jitter(0.0, 1.0, 1.0, 0.0, 0.1, -0.2);
        assert!(close(t.apply((0.5, 0.5)), (0.6, 0.3)));
    }

    #[test]
    fn compose_matches_sequential_application() {
        let f = Affine::jitter(0.3, 1.1, 0.9, 0.1, 0.05, -0.02);
        let g = Affine::rotation(1.0);
        let p = (0.2, 0.8);
        let seq = f.apply(g.apply(p));
        let comp = f.compose(&g).apply(p);
        assert!(close(seq, comp), "{seq:?} vs {comp:?}");
    }
}
