//! Property-based tests of the synthetic dataset generators: the
//! invariants every downstream experiment silently relies on.

use proptest::prelude::*;
use sparsenn_datasets::{DatasetKind, DatasetSpec, IMAGE_PIXELS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), n in 1usize..40) {
        for kind in DatasetKind::ALL {
            let spec = DatasetSpec { kind, train: n, test: n / 2, seed };
            prop_assert_eq!(spec.generate(), spec.generate());
        }
    }

    /// Every pixel of every variant stays in [0, 1] and every image has
    /// the right size; labels stay in range.
    #[test]
    fn images_are_well_formed(seed in any::<u64>(), n in 1usize..30) {
        for kind in DatasetKind::ALL {
            let d = DatasetSpec { kind, train: n, test: 0, seed }.generate().train;
            for (img, label) in d.iter() {
                prop_assert_eq!(img.len(), IMAGE_PIXELS);
                prop_assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
                prop_assert!(label < 10);
            }
        }
    }

    /// The input-sparsity profile that drives Fig. 7 holds for every seed:
    /// BASIC and ROT are mostly zeros, BG-RAND is dense.
    #[test]
    fn sparsity_profile_holds(seed in any::<u64>()) {
        let n = 30usize;
        let basic = DatasetSpec { kind: DatasetKind::Basic, train: n, test: 0, seed }
            .generate().train.input_sparsity();
        let rot = DatasetSpec { kind: DatasetKind::Rot, train: n, test: 0, seed }
            .generate().train.input_sparsity();
        let bg = DatasetSpec { kind: DatasetKind::BgRand, train: n, test: 0, seed }
            .generate().train.input_sparsity();
        prop_assert!(basic > 0.5, "basic {basic}");
        prop_assert!(rot > 0.5, "rot {rot}");
        prop_assert!(bg < 0.02, "bg_rand {bg}");
    }

    /// Class balance: round-robin labels give equal counts whenever the
    /// sample count is a multiple of 10.
    #[test]
    fn classes_are_balanced(seed in any::<u64>(), tens in 1usize..5) {
        let d = DatasetSpec { kind: DatasetKind::Basic, train: tens * 10, test: 0, seed }
            .generate().train;
        let h = d.class_histogram();
        prop_assert!(h.iter().all(|&c| c == tens), "{h:?}");
    }

    /// ROT images keep roughly the same amount of ink as BASIC — rotation
    /// must not clip the glyph off the canvas.
    #[test]
    fn rotation_preserves_ink(seed in any::<u64>()) {
        let n = 20usize;
        let ink = |kind| {
            let d = DatasetSpec { kind, train: n, test: 0, seed }.generate().train;
            let total: f32 = (0..d.len())
                .map(|i| d.image(i).iter().sum::<f32>())
                .sum();
            total / n as f32
        };
        let basic = ink(DatasetKind::Basic);
        let rot = ink(DatasetKind::Rot);
        prop_assert!(rot > basic * 0.6 && rot < basic * 1.6, "basic {basic} rot {rot}");
    }
}
