//! Slice-granular transfer scheduling — the timing model behind
//! wavefront pipelining.
//!
//! [`InterChipConfig::broadcast_cycles`]/[`gather_cycles`] price a
//! transfer as one opaque total: every value ready at once, the last
//! value landing `values × flits + depth × hop` link cycles later. That
//! is exactly right for the *serialized* schedule (layer l+1 waits for
//! layer l's full gather), but it throws away the one fact pipelining
//! exploits: different chips — and different rows within a chip — finish
//! at different times, so their slices can be in flight while slower
//! chips still compute.
//!
//! This module prices the same fabric at slice granularity. A
//! [`SliceTransfer`] says *when* each of a chip's nonzero output values
//! becomes available (the per-value readiness profile, fed by
//! `LayerRun::row_ready`) and when the whole slice is decided;
//! [`InterChipConfig::gather_schedule`] /
//! [`InterChipConfig::broadcast_schedule`] return per-slice completion
//! times under the fabric's real constraints — the root link serializes
//! one flit per cycle across *all* slices, a value cannot travel before
//! it exists, and every flit still pays the tree's store-and-forward
//! latency. When every slice is ready at the same instant the last
//! completion collapses to exactly the old totals (the degenerate case
//! the unit tests pin down), so the serialized schedule remains a
//! special case of this one.
//!
//! [`gather_cycles`]: InterChipConfig::gather_cycles

use crate::interchip::InterChipConfig;

/// Which execution schedule a multi-chip run uses — how layer-to-layer
/// dependencies are timed, never *what* is computed (outputs, masks and
/// event sums are bit-identical across modes by construction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PipelineMode {
    /// The PR-4 schedule: layer *l+1* starts only after layer *l*'s full
    /// gather; per-layer latency is `broadcast + slowest chip + gather`,
    /// each stage end-to-end before the next begins.
    #[default]
    Serialized,
    /// Wavefront pipelining: each chip's output slice starts crossing
    /// the fabric as its rows become final
    /// ([`LayerRun::row_ready`](sparsenn_sim::LayerRun::row_ready)), and
    /// every chip starts layer *l+1* as soon as the last gathered slice
    /// of layer *l* lands on it — overlapping inter-chip communication
    /// with the compute of slower chips instead of serializing behind
    /// it.
    Wavefront,
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PipelineMode::Serialized => "serialized",
            PipelineMode::Wavefront => "wavefront",
        })
    }
}

/// One chip's output slice as seen by the transfer scheduler: an
/// availability profile plus a payload size.
#[derive(Clone, Debug, PartialEq)]
pub struct SliceTransfer {
    /// Wall-clock time each *nonzero* value of the slice becomes final,
    /// microseconds, in any order — only nonzeros travel (the fabric
    /// extends the machine's input-sparsity skipping), so a slice of
    /// all-zero rows costs no link time at all. The full profile (not
    /// just a first/last window) is what keeps the scheduler honest: a
    /// value cannot enter the fabric before its own timestamp.
    pub ready_us: Vec<f64>,
    /// Wall-clock time the *whole* slice — zero rows included — is
    /// decided, microseconds (`≥` every `ready_us` entry). Zeros are
    /// implicit on this fabric, but a consumer only knows a row is zero
    /// once its producer finished deciding it, so a slice has not
    /// "arrived" before this.
    pub decided_us: f64,
}

impl SliceTransfer {
    /// A slice whose whole payload is ready at one instant (the
    /// degenerate, serialized-equivalent profile).
    pub fn ready_at(time_us: f64, values: usize) -> Self {
        Self {
            ready_us: vec![time_us; values],
            decided_us: time_us,
        }
    }

    /// Nonzero values the slice moves across the fabric.
    pub fn values(&self) -> usize {
        self.ready_us.len()
    }

    /// The time the last transferable value became final (`decided_us`
    /// for an all-zero slice).
    pub fn last_ready_us(&self) -> f64 {
        self.ready_us
            .iter()
            .copied()
            .fold(self.decided_us, f64::max)
    }
}

impl InterChipConfig {
    /// Link time to move one activation, microseconds
    /// (`flits_per_activation` link cycles).
    pub fn activation_us(&self) -> f64 {
        self.flits_per_activation as f64 * self.link_clock_ns * 1e-3
    }

    /// Store-and-forward pipeline latency through the whole tree,
    /// microseconds (`hop_latency × levels` link cycles; 0 for a single
    /// chip).
    pub fn traversal_us(&self, chips: usize) -> f64 {
        (self.hop_latency * self.levels(chips)) as f64 * self.link_clock_ns * 1e-3
    }

    /// Schedules the upward gather of per-chip output slices through the
    /// root link and returns, per slice (same order as `slices`), the
    /// time its last value has fully arrived at the root.
    ///
    /// The model: the root link serializes one flit per link cycle,
    /// slices drain whole in order of their `decided_us` (input order on
    /// ties), **no value travels before its own `ready_us` timestamp**,
    /// and each flit pays the tree's store-and-forward latency
    /// ([`traversal_us`](Self::traversal_us)). Empty slices occupy no
    /// link time: their "arrival" is the instant their producer finished
    /// deciding the rows are zero (zeros are implicit on this fabric,
    /// exactly as in [`gather_cycles`](Self::gather_cycles)).
    ///
    /// Degenerate case: when every slice is ready at one common instant
    /// `T`, the latest arrival is exactly
    /// `T + time_us(gather_cycles(chips, Σ values))` — the serialized
    /// total. With [`InterChipConfig::free`] every arrival equals the
    /// slice's own `decided_us`.
    pub fn gather_schedule(&self, chips: usize, slices: &[SliceTransfer]) -> Vec<f64> {
        self.schedule(chips, slices)
    }

    /// Schedules the downward broadcast of gathered slices from the root
    /// to every chip and returns, per slice (same order), the time its
    /// last value has landed on all chips.
    ///
    /// Same server model as [`gather_schedule`](Self::gather_schedule)
    /// — the root serializes one flit per cycle down a pipelined tree
    /// that replicates each flit to every leaf — with the slice's
    /// readiness window now being its arrival at the root. Feeding each
    /// gathered slice straight into the broadcast (instead of waiting
    /// for the full gather) is what lets a downstream chip's next layer
    /// start while upstream chips still compute.
    pub fn broadcast_schedule(&self, chips: usize, slices: &[SliceTransfer]) -> Vec<f64> {
        self.schedule(chips, slices)
    }

    /// The shared single-server link model behind both schedules.
    fn schedule(&self, chips: usize, slices: &[SliceTransfer]) -> Vec<f64> {
        let mut done = vec![0.0f64; slices.len()];
        if chips <= 1 {
            // Nothing leaves the die: data is "transferred" the moment
            // it exists.
            for (d, s) in done.iter_mut().zip(slices) {
                *d = s.decided_us;
            }
            return done;
        }
        let act_us = self.activation_us();
        let pipe_us = self.traversal_us(chips);
        let mut order: Vec<usize> = (0..slices.len()).collect();
        order.sort_by(|&a, &b| {
            slices[a]
                .decided_us
                .total_cmp(&slices[b].decided_us)
                .then(a.cmp(&b))
        });
        // Time the serializing link becomes free again.
        let mut link_free = 0.0f64;
        for i in order {
            let s = &slices[i];
            if s.ready_us.is_empty() {
                done[i] = s.decided_us;
                continue;
            }
            // Stream the payload in readiness order: every value waits
            // for the link to free AND for its own timestamp — values
            // produced slower than the link drains pace the transfer
            // value by value, not just at the window edges.
            let mut ready = s.ready_us.clone();
            ready.sort_by(f64::total_cmp);
            for r in ready {
                link_free = link_free.max(r) + act_us;
            }
            done[i] = link_free.max(s.decided_us) + pipe_us;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_instant_collapses_to_the_serialized_totals() {
        let c = InterChipConfig::default();
        for chips in [2usize, 4, 8] {
            for t0 in [0.0, 3.5] {
                let slices: Vec<SliceTransfer> = [40usize, 25, 35]
                    .iter()
                    .map(|&v| SliceTransfer::ready_at(t0, v))
                    .collect();
                let arrivals = c.gather_schedule(chips, &slices);
                let last = arrivals.iter().cloned().fold(0.0f64, f64::max);
                let total = c.time_us(c.gather_cycles(chips, 100));
                assert!(
                    (last - (t0 + total)).abs() < 1e-12,
                    "{chips} chips: {last} vs {}",
                    t0 + total
                );
            }
        }
    }

    #[test]
    fn free_links_deliver_at_readiness() {
        let c = InterChipConfig::free();
        let slices = [
            SliceTransfer {
                ready_us: (0..100).map(|i| 1.0 + 0.03 * f64::from(i)).collect(),
                decided_us: 4.0,
            },
            SliceTransfer::ready_at(2.0, 0),
        ];
        assert_eq!(c.gather_schedule(4, &slices), vec![4.0, 2.0]);
        assert_eq!(c.broadcast_schedule(4, &slices), vec![4.0, 2.0]);
    }

    #[test]
    fn single_chip_transfers_nothing() {
        let c = InterChipConfig::default();
        let slices = [SliceTransfer::ready_at(7.0, 1000)];
        assert_eq!(c.gather_schedule(1, &slices), vec![7.0]);
    }

    #[test]
    fn early_slices_overlap_late_compute() {
        let c = InterChipConfig::default(); // 1 flit/value at 1 ns, 8-cycle hops
                                            // Chip 0 finishes its 1000-value slice at t=0; chip 1 only at
                                            // t=10 µs. The early slice crosses while chip 1 still computes,
                                            // so the last arrival is paced by chip 1's readiness — not by
                                            // 2000 values of back-to-back serialization.
        let slices = [
            SliceTransfer::ready_at(0.0, 1000),
            SliceTransfer::ready_at(10.0, 1000),
        ];
        let arrivals = c.gather_schedule(2, &slices);
        let serialized_total = c.time_us(c.gather_cycles(2, 2000)); // 2.008 µs
        assert!(
            arrivals[0] < 10.0,
            "early slice lands before chip 1 is done"
        );
        let last = arrivals[1];
        assert!(
            last < 10.0 + serialized_total,
            "overlap must beat ready-all-at-10 serialization: {last}"
        );
        // And it is never optimistic about the fabric itself: chip 1's
        // own payload still pays its full serialization + hops.
        let own = 10.0 + c.time_us(c.gather_cycles(2, 1000));
        assert!((last - own).abs() < 1e-12, "{last} vs {own}");
    }

    #[test]
    fn link_contention_serializes_overlapping_slices() {
        let c = InterChipConfig::default();
        // Both slices ready at t=0: the second must queue behind the
        // first on the root link.
        let slices = [
            SliceTransfer::ready_at(0.0, 500),
            SliceTransfer::ready_at(0.0, 500),
        ];
        let arrivals = c.gather_schedule(2, &slices);
        let hop = c.traversal_us(2);
        assert!((arrivals[0] - (0.5 + hop)).abs() < 1e-12);
        assert!((arrivals[1] - (1.0 + hop)).abs() < 1e-12);
    }

    #[test]
    fn a_streaming_slice_cannot_finish_before_its_last_value() {
        let c = InterChipConfig::default();
        // 10 values trickling out until t=5 µs: the transfer is paced by
        // the readiness profile, not the tiny payload.
        let slices = [SliceTransfer {
            ready_us: (0..10).map(|i| 0.5 * f64::from(i) + 0.5).collect(),
            decided_us: 5.0,
        }];
        let arrivals = c.gather_schedule(4, &slices);
        assert!(arrivals[0] >= 5.0 + c.activation_us());
    }

    #[test]
    fn every_value_waits_for_its_own_timestamp_not_just_the_window_edges() {
        let c = InterChipConfig::default(); // 1 flit/value at 1 ns/cycle
                                            // 1000 values: one at t=0, 999 only final at t=10 µs. A model
                                            // constrained only at the window edges would claim
                                            // max(0 + 1000·act, 10 + act) ≈ 10.001; physically the 999 late
                                            // values serialize after t=10.
        let mut ready = vec![10.0; 1000];
        ready[0] = 0.0;
        let slices = [SliceTransfer {
            ready_us: ready,
            decided_us: 10.0,
        }];
        let arrivals = c.gather_schedule(2, &slices);
        let want = 10.0 + 999.0 * c.activation_us() + c.traversal_us(2);
        assert!(
            (arrivals[0] - want).abs() < 1e-9,
            "late values must pace the link: {} vs {want}",
            arrivals[0]
        );
    }

    #[test]
    fn pipeline_mode_displays_and_defaults() {
        assert_eq!(PipelineMode::default(), PipelineMode::Serialized);
        assert_eq!(PipelineMode::Serialized.to_string(), "serialized");
        assert_eq!(PipelineMode::Wavefront.to_string(), "wavefront");
    }
}
