//! Model-parallel partitioning: serve networks bigger than one chip's
//! W memory by tiling each layer's **output neurons** (rows of W) across
//! several SparseNN chips.
//!
//! A single Table-II machine holds 8 MB of W memory; any layer needing
//! more per-PE weight words than [`MachineConfig::w_capacity_words_per_pe`]
//! is rejected with `WMemoryOverflow`. This crate closes that gap the way
//! SCNN-style accelerators scale: split the rows of each weight matrix
//! into per-chip *tiles*, broadcast the (sparse) input activations to
//! every chip, compute each tile on an unmodified chip, and gather the
//! per-chip output slices over a chip-level interconnect. Row arithmetic
//! is row-local, so the gathered outputs are **bit-identical** to a
//! single big chip's.
//!
//! Three pieces:
//!
//! * [`plan`] / [`PartitionPlan`] — the planner: a greedy,
//!   nnz-weight-balanced assignment of rows to chips under each chip's
//!   W-memory capacity, validated (tiles disjoint, exhaustive, each
//!   fits) and serializable in a diff-able text format so a plan can be
//!   stored alongside a `TrainedSystem` checkpoint;
//! * [`InterChipConfig`] — the communication cost model: the same
//!   radix-R tree/flit vocabulary as the PE-level H-tree of
//!   `sparsenn-noc` ([`sparsenn_noc::tree_levels`]), lifted one level up
//!   to chip-to-chip links with their own (slower) hop latency and link
//!   clock;
//! * the execution model lives in `sparsenn-core`
//!   (`engine::PartitionedMachine`), which runs each tile on the
//!   cycle-accurate `Machine` and stamps records with
//!   `max(chip tiles) + gather` critical paths.
//!
//! # Example
//!
//! ```
//! use sparsenn_partition::{plan, InterChipConfig};
//! use sparsenn_model::fixedpoint::FixedNetwork;
//! use sparsenn_model::Mlp;
//! use sparsenn_linalg::init::seeded_rng;
//! use sparsenn_sim::MachineConfig;
//!
//! // A chip whose W memory holds only 2 K words per PE…
//! let chip = MachineConfig { w_mem_bytes: 4 * 1024, ..MachineConfig::default() };
//! let net = FixedNetwork::from_mlp(&Mlp::random(&[64, 256, 10], &mut seeded_rng(1)));
//! // …cannot hold the 256×64 layer alone (4 rows/PE × 64 cols = 256 words
//! // fits, so use 2 chips for a genuinely big layer in real use).
//! let p = plan(&net, &chip, 2).unwrap();
//! assert_eq!(p.chips(), 2);
//! p.validate(&chip).unwrap();
//! let icc = InterChipConfig::default();
//! assert!(icc.broadcast_cycles(2, 100) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interchip;
mod plan;
mod schedule;

pub use interchip::InterChipConfig;
pub use plan::{plan, plan_with_row_costs, LayerPlan, PartitionError, PartitionPlan};
pub use schedule::{PipelineMode, SliceTransfer};

// Re-exported so downstream code can name the capacity type the planner
// diagnostics are phrased in without a direct `sparsenn-sim` dependency.
pub use sparsenn_sim::MachineConfig;
