//! The partition planner and its validated, serializable plan.

use sparsenn_model::fixedpoint::FixedNetwork;
use sparsenn_sim::MachineConfig;
use std::fmt::Write as _;

/// Why a network could not be partitioned, or why a plan is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// A plan needs at least one chip.
    NoChips,
    /// The network has no layers.
    EmptyNetwork,
    /// A layer's input width exceeds one chip's activation register
    /// files. Row tiling cannot help: every chip receives the *full*
    /// broadcast input, so the columns must fit each chip as-is.
    InputTooWide {
        /// Index of the offending layer.
        layer: usize,
        /// Input activations the layer needs.
        cols: usize,
        /// Register-file entries one chip holds.
        max: usize,
    },
    /// A layer's output rows exceed the combined activation register
    /// files of all chips: even tiles of `max` rows (the register-file
    /// limit, with unlimited W memory) cannot cover the layer.
    OutputTooWide {
        /// Index of the offending layer.
        layer: usize,
        /// Output rows the layer produces.
        rows: usize,
        /// Register-file entries one chip holds.
        max: usize,
        /// Chips the planner had available.
        chips: usize,
    },
    /// Even the best row tile overflows a chip's W memory — the
    /// chip-level counterpart of
    /// [`LayerFitError::WMemoryOverflow`](sparsenn_sim::LayerFitError),
    /// carrying the same per-PE word sizes (`sparsenn-core` surfaces it
    /// as its typed `WMemoryOverflow` error).
    ChipCapacity {
        /// Index of the offending layer.
        layer: usize,
        /// Weight words per PE the smallest assignable tile would need.
        words: usize,
        /// Words one chip's W memory holds per PE.
        capacity: usize,
        /// Chips the planner had available.
        chips: usize,
    },
    /// A plan failed structural validation (tiles not disjoint, not
    /// exhaustive, wrong chip count, …).
    Invalid {
        /// What is wrong with the plan.
        message: String,
    },
    /// Plan (de)serialization failed: I/O error or malformed text.
    Format {
        /// Human-readable description of the failure.
        message: String,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoChips => f.write_str("a partition plan needs at least one chip"),
            PartitionError::EmptyNetwork => f.write_str("cannot partition an empty network"),
            PartitionError::InputTooWide { layer, cols, max } => write!(
                f,
                "layer {layer}: {cols} input activations exceed one chip's {max}-entry \
                 register files (row tiling cannot reduce the broadcast input)"
            ),
            PartitionError::OutputTooWide {
                layer,
                rows,
                max,
                chips,
            } => write!(
                f,
                "layer {layer}: {rows} output rows exceed the {max}-entry register files of \
                 all {chips} chip(s) combined"
            ),
            PartitionError::ChipCapacity {
                layer,
                words,
                capacity,
                chips,
            } => write!(
                f,
                "layer {layer}: even split over {chips} chip(s), a tile needs {words} weight \
                 words per PE against a capacity of {capacity}"
            ),
            PartitionError::Invalid { message } => write!(f, "invalid partition plan: {message}"),
            PartitionError::Format { message } => {
                write!(f, "partition plan format: {message}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// The row tiling of one layer: one (possibly empty) tile of global row
/// indices per chip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerPlan {
    /// Total output rows of the layer.
    pub rows: usize,
    /// Input columns of the layer (broadcast whole to every chip).
    pub cols: usize,
    /// One sorted list of global row indices per chip.
    pub tiles: Vec<Vec<usize>>,
}

impl LayerPlan {
    /// Per-PE weight words a tile of `t` rows needs on `chip`.
    fn tile_words(&self, chip: &MachineConfig, t: usize) -> usize {
        t.div_ceil(chip.num_pes()) * self.cols
    }
}

/// A validated row-tiling of every layer of a network across `chips`
/// identically-configured chips.
///
/// Produced by [`plan`]; structural invariants ([`validate`](Self::validate))
/// are: per layer, the tiles are **disjoint**, **exhaustive** (their
/// union is exactly `0..rows`) and **each fits its chip's W memory and
/// register files**. The text serialization
/// ([`to_plan_string`](Self::to_plan_string)) round-trips bit-identically
/// and is meant to be stored alongside a `TrainedSystem` checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    chips: usize,
    layers: Vec<LayerPlan>,
}

/// Plans a row tiling of `net` over `chips` chips of configuration
/// `chip`.
///
/// Rows are assigned greedily, heaviest first, to the least-loaded chip
/// that can still take a row — where a row's weight is its count of
/// nonzero quantized weights (+1, so all-zero rows still spread by
/// count). This balances the *static* work each chip does in the W
/// phase, while the capacity check guarantees each tile fits
/// [`MachineConfig::w_capacity_words_per_pe`]. `plan` is exactly
/// [`plan_with_row_costs`] with a uniform cost of 1.0 per row — use
/// that variant when per-row expected activity (e.g. predictor mask
/// frequencies from a calibration batch) is available, so uv_on's
/// skewed row activity stops making the slowest chip the critical path.
///
/// A plan over one chip admits exactly the networks the single
/// `Machine` admits — same register-file and W-memory checks.
///
/// # Errors
///
/// [`PartitionError::NoChips`], [`PartitionError::EmptyNetwork`],
/// [`PartitionError::InputTooWide`] when a layer's *columns* exceed one
/// chip's register files, [`PartitionError::OutputTooWide`] when its
/// rows exceed all chips' register files combined (the binding limit is
/// the register files, not W memory), and
/// [`PartitionError::ChipCapacity`] when no assignment fits the W
/// memory (its `words`/`capacity` are the same per-PE sizes the
/// machine's `WMemoryOverflow` reports).
pub fn plan(
    net: &FixedNetwork,
    chip: &MachineConfig,
    chips: usize,
) -> Result<PartitionPlan, PartitionError> {
    plan_impl(net, chip, chips, None)
}

/// Plans a row tiling of `net` balancing *expected* per-row activity
/// instead of static structure alone.
///
/// `row_costs` holds, per layer, one weight per output row — the
/// expected fraction of samples the row is actually computed (a
/// predictor mask frequency measured on a calibration batch; values are
/// clamped to `[0, 1]`). A row's greedy weight becomes
/// `activity × (1 + nnz)`, so a row the predictor almost always
/// bypasses contributes almost nothing to its chip's expected W-phase
/// load — this is what evens out per-chip compute time under `uv_on`,
/// where random mask skew otherwise makes the most-active chip the
/// critical path of every layer. Capacity checks are unchanged: costs
/// steer *placement*, never feasibility.
///
/// With every cost 1.0 the plan is bit-identical to [`plan`]'s (the
/// uniform-cost wrapper).
///
/// # Errors
///
/// As for [`plan`], plus [`PartitionError::Invalid`] when `row_costs`
/// does not have exactly one finite, non-negative entry per row per
/// layer.
pub fn plan_with_row_costs(
    net: &FixedNetwork,
    chip: &MachineConfig,
    chips: usize,
    row_costs: &[Vec<f64>],
) -> Result<PartitionPlan, PartitionError> {
    if row_costs.len() != net.num_layers() {
        return Err(PartitionError::Invalid {
            message: format!(
                "row-cost table has {} layers for a {}-layer network",
                row_costs.len(),
                net.num_layers()
            ),
        });
    }
    for (l, (costs, w)) in row_costs.iter().zip(net.layers()).enumerate() {
        if costs.len() != w.rows() {
            return Err(PartitionError::Invalid {
                message: format!(
                    "row-cost table layer {l} has {} entries for {} rows",
                    costs.len(),
                    w.rows()
                ),
            });
        }
        if let Some(bad) = costs.iter().find(|c| !c.is_finite() || **c < 0.0) {
            return Err(PartitionError::Invalid {
                message: format!(
                    "row-cost table layer {l} has a non-finite or negative cost {bad}"
                ),
            });
        }
    }
    plan_impl(net, chip, chips, Some(row_costs))
}

/// Fixed-point scale for greedy row weights: activity is resolved to
/// ~1/1024 before integer load balancing, keeping the assignment fully
/// deterministic across platforms (no float accumulation).
const COST_SCALE: f64 = 1024.0;

fn plan_impl(
    net: &FixedNetwork,
    chip: &MachineConfig,
    chips: usize,
    row_costs: Option<&[Vec<f64>]>,
) -> Result<PartitionPlan, PartitionError> {
    if chips == 0 {
        return Err(PartitionError::NoChips);
    }
    if net.num_layers() == 0 {
        return Err(PartitionError::EmptyNetwork);
    }
    let max_act = chip.max_activations();
    let capacity = chip.w_capacity_words_per_pe();
    let mut layers = Vec::with_capacity(net.num_layers());
    for (l, w) in net.layers().iter().enumerate() {
        let (rows, cols) = (w.rows(), w.cols());
        if cols > max_act {
            return Err(PartitionError::InputTooWide {
                layer: l,
                cols,
                max: max_act,
            });
        }
        let layer = LayerPlan {
            rows,
            cols,
            tiles: vec![Vec::new(); chips],
        };
        // Largest tile one chip holds; feasibility is decided up front,
        // and the error names the *binding* constraint: the register
        // files when even an unlimited W memory could not take the
        // rows, else W capacity with the even split's requirement (for
        // one chip exactly the machine's own W-overflow check).
        let words_per_row_group = |t: usize| layer.tile_words(chip, t);
        // ceil(t / n_pes) × cols ≤ capacity  ⇔  t ≤ (capacity/cols) × n_pes
        // (a zero-column layer needs no W memory at all).
        let t_cap = capacity.checked_div(cols).map_or(rows, |groups| {
            groups.saturating_mul(chip.num_pes()).min(rows)
        });
        let t_max = t_cap.min(max_act);
        if rows > chips.saturating_mul(t_max) {
            if rows > chips.saturating_mul(max_act) {
                return Err(PartitionError::OutputTooWide {
                    layer: l,
                    rows,
                    max: max_act,
                    chips,
                });
            }
            return Err(PartitionError::ChipCapacity {
                layer: l,
                words: words_per_row_group(rows.div_ceil(chips)),
                capacity,
                chips,
            });
        }
        // Heaviest rows first; ties keep ascending row order (stable).
        // Uniform costs scale every weight by the same constant, so the
        // greedy assignment (and thus `plan`) is unchanged by the
        // fixed-point resolution.
        let weights: Vec<u64> = (0..rows)
            .map(|r| {
                let base = (1 + w.row(r).iter().filter(|v| !v.is_zero()).count() as u64) as f64;
                let cost = match row_costs {
                    None => base,
                    Some(costs) => costs[l][r].clamp(0.0, 1.0) * base,
                };
                ((cost * COST_SCALE).round() as u64).max(1)
            })
            .collect();
        let mut order: Vec<usize> = (0..rows).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(weights[r]));
        let mut tiles = layer.tiles.clone();
        let mut loads = vec![0u64; chips];
        for r in order {
            // The least-loaded chip with room for one more row (always
            // exists: rows <= chips × t_max).
            let c = (0..chips)
                .filter(|&c| tiles[c].len() < t_max)
                .min_by_key(|&c| (loads[c], c))
                .expect("feasibility checked above");
            tiles[c].push(r);
            loads[c] += weights[r];
        }
        for tile in &mut tiles {
            tile.sort_unstable();
        }
        layers.push(LayerPlan { tiles, ..layer });
    }
    Ok(PartitionPlan { chips, layers })
}

impl PartitionPlan {
    /// Number of chips the plan spans.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Per-layer tilings, input side first.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// `true` when the plan's layer shapes match `net` (same layer
    /// count, rows and cols) — the precondition for executing `net`
    /// under this plan.
    pub fn matches(&self, net: &FixedNetwork) -> bool {
        self.layers.len() == net.num_layers()
            && self
                .layers
                .iter()
                .zip(net.layers())
                .all(|(p, w)| p.rows == w.rows() && p.cols == w.cols())
    }

    /// Checks the structural invariants against a chip configuration:
    /// per layer, one tile per chip, tiles disjoint and exhaustive over
    /// `0..rows`, every tile (and the broadcast input) within the chip's
    /// limits.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Invalid`] naming the first violation, or
    /// [`PartitionError::ChipCapacity`] /
    /// [`PartitionError::InputTooWide`] for capacity violations.
    pub fn validate(&self, chip: &MachineConfig) -> Result<(), PartitionError> {
        let invalid = |message: String| PartitionError::Invalid { message };
        if self.chips == 0 {
            return Err(PartitionError::NoChips);
        }
        for (l, layer) in self.layers.iter().enumerate() {
            if layer.tiles.len() != self.chips {
                return Err(invalid(format!(
                    "layer {l} has {} tiles for {} chips",
                    layer.tiles.len(),
                    self.chips
                )));
            }
            if layer.cols > chip.max_activations() {
                return Err(PartitionError::InputTooWide {
                    layer: l,
                    cols: layer.cols,
                    max: chip.max_activations(),
                });
            }
            let mut seen = vec![false; layer.rows];
            for (c, tile) in layer.tiles.iter().enumerate() {
                if tile.len() > chip.max_activations() {
                    return Err(invalid(format!(
                        "layer {l} tile {c}: {} rows exceed the {}-entry register files",
                        tile.len(),
                        chip.max_activations()
                    )));
                }
                let words = layer.tile_words(chip, tile.len());
                if words > chip.w_capacity_words_per_pe() {
                    return Err(PartitionError::ChipCapacity {
                        layer: l,
                        words,
                        capacity: chip.w_capacity_words_per_pe(),
                        chips: self.chips,
                    });
                }
                for &r in tile {
                    if r >= layer.rows {
                        return Err(invalid(format!(
                            "layer {l} tile {c}: row {r} out of range 0..{}",
                            layer.rows
                        )));
                    }
                    if seen[r] {
                        return Err(invalid(format!(
                            "layer {l}: row {r} assigned to more than one tile"
                        )));
                    }
                    seen[r] = true;
                }
            }
            if let Some(r) = seen.iter().position(|&s| !s) {
                return Err(invalid(format!(
                    "layer {l}: row {r} assigned to no tile (tiles are not exhaustive)"
                )));
            }
        }
        Ok(())
    }

    /// Renders the plan in the workspace's line-oriented text style
    /// (diff-able, dependency-free), with consecutive rows compressed to
    /// `a-b` runs. [`from_plan_str`](Self::from_plan_str) round-trips it
    /// bit-identically.
    pub fn to_plan_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "sparsenn-partition v1");
        let _ = writeln!(out, "chips {}", self.chips);
        let _ = writeln!(out, "layers {}", self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let _ = writeln!(out, "layer {l} rows {} cols {}", layer.rows, layer.cols);
            for (c, tile) in layer.tiles.iter().enumerate() {
                let _ = write!(out, "tile {c}");
                let mut i = 0;
                while i < tile.len() {
                    let start = tile[i];
                    let mut end = start;
                    while i + 1 < tile.len() && tile[i + 1] == end + 1 {
                        i += 1;
                        end = tile[i];
                    }
                    if start == end {
                        let _ = write!(out, " {start}");
                    } else {
                        let _ = write!(out, " {start}-{end}");
                    }
                    i += 1;
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses text produced by [`to_plan_string`](Self::to_plan_string).
    ///
    /// # Errors
    ///
    /// [`PartitionError::Format`] describing the first malformed line.
    pub fn from_plan_str(text: &str) -> Result<Self, PartitionError> {
        let bad = |message: String| PartitionError::Format { message };
        let mut lines = text.lines();
        let mut next = |what: &str| -> Result<&str, PartitionError> {
            lines
                .next()
                .ok_or_else(|| bad(format!("missing {what} line")))
        };
        let header = next("header")?;
        if header.trim() != "sparsenn-partition v1" {
            return Err(bad(format!(
                "bad header `{header}` (expected `sparsenn-partition v1`)"
            )));
        }
        let num = |t: &str| -> Result<usize, PartitionError> {
            t.parse().map_err(|_| bad(format!("bad number `{t}`")))
        };
        let chips = num(next("chips")?
            .strip_prefix("chips ")
            .ok_or_else(|| bad("expected `chips N`".into()))?)?;
        let n_layers = num(next("layers")?
            .strip_prefix("layers ")
            .ok_or_else(|| bad("expected `layers N`".into()))?)?;
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let fields: Vec<&str> = next("layer")?.split_whitespace().collect();
            let [kw, idx, rkw, rows, ckw, cols] = fields[..] else {
                return Err(bad(format!("layer {l}: expected `layer L rows R cols C`")));
            };
            if kw != "layer" || rkw != "rows" || ckw != "cols" || num(idx)? != l {
                return Err(bad(format!("layer {l}: malformed layer line")));
            }
            let (rows, cols) = (num(rows)?, num(cols)?);
            let mut tiles = Vec::with_capacity(chips);
            for c in 0..chips {
                let line = next("tile")?;
                let mut toks = line.split_whitespace();
                if toks.next() != Some("tile")
                    || toks.next().and_then(|t| t.parse().ok()) != Some(c)
                {
                    return Err(bad(format!(
                        "layer {l}: expected `tile {c} …`, got `{line}`"
                    )));
                }
                let mut tile = Vec::new();
                for tok in toks {
                    match tok.split_once('-') {
                        Some((a, b)) => {
                            let (a, b) = (num(a)?, num(b)?);
                            if a > b {
                                return Err(bad(format!("layer {l} tile {c}: bad run `{tok}`")));
                            }
                            tile.extend(a..=b);
                        }
                        None => tile.push(num(tok)?),
                    }
                }
                tiles.push(tile);
            }
            layers.push(LayerPlan { rows, cols, tiles });
        }
        Ok(PartitionPlan { chips, layers })
    }

    /// Saves the plan as a text file (store it next to the
    /// `TrainedSystem` checkpoint it was planned for).
    ///
    /// # Errors
    ///
    /// [`PartitionError::Format`] wrapping the underlying I/O error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PartitionError> {
        std::fs::write(path.as_ref(), self.to_plan_string()).map_err(|e| PartitionError::Format {
            message: format!("writing {}: {e}", path.as_ref().display()),
        })
    }

    /// Loads a plan saved by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// [`PartitionError::Format`] for I/O errors or malformed text.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PartitionError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| PartitionError::Format {
            message: format!("reading {}: {e}", path.as_ref().display()),
        })?;
        Self::from_plan_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsenn_linalg::init::seeded_rng;
    use sparsenn_model::Mlp;
    use sparsenn_sim::LayerFitError;

    fn fixed(dims: &[usize], seed: u64) -> FixedNetwork {
        FixedNetwork::from_mlp(&Mlp::random(dims, &mut seeded_rng(seed)))
    }

    /// A chip whose per-PE W memory holds `words` 16-bit weights.
    fn chip_with_words(words: usize) -> MachineConfig {
        MachineConfig {
            w_mem_bytes: words * 2,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn single_chip_plan_admits_what_the_machine_admits() {
        let chip = MachineConfig::default();
        let net = fixed(&[784, 1000, 10], 1);
        let p = plan(&net, &chip, 1).unwrap();
        p.validate(&chip).unwrap();
        assert_eq!(p.layers()[0].tiles[0].len(), 1000);

        // On a shrunken chip the planner rejects with the *same* per-PE
        // sizes the machine's typed W-overflow check reports.
        let small = chip_with_words(4096);
        let net = fixed(&[784, 512, 10], 2);
        match plan(&net, &small, 1) {
            Err(PartitionError::ChipCapacity {
                layer,
                words,
                capacity,
                chips,
            }) => {
                assert_eq!((layer, chips), (0, 1));
                assert_eq!(
                    small.validate_layer(512, 784),
                    Err(LayerFitError::WMemoryOverflow { words, capacity })
                );
            }
            other => panic!("expected ChipCapacity, got {other:?}"),
        }
    }

    #[test]
    fn two_chips_fit_a_layer_one_chip_rejects() {
        // 512 rows × 784 cols: 8 rows/PE × 784 = 6272 words > 4096.
        let chip = chip_with_words(4096);
        let net = fixed(&[784, 512, 10], 3);
        assert!(matches!(
            plan(&net, &chip, 1),
            Err(PartitionError::ChipCapacity { layer: 0, .. })
        ));
        let p = plan(&net, &chip, 2).unwrap();
        p.validate(&chip).unwrap();
        let sizes: Vec<usize> = p.layers()[0].tiles.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 512);
        // nnz-weight balancing keeps the split close to even.
        assert!(sizes.iter().all(|&s| s >= 200), "{sizes:?}");
    }

    #[test]
    fn impossible_inputs_are_typed_errors() {
        let chip = MachineConfig::default();
        let net = fixed(&[16, 32, 10], 4);
        assert_eq!(plan(&net, &chip, 0), Err(PartitionError::NoChips));
        let wide = fixed(&[5000, 16], 5);
        assert!(matches!(
            plan(&wide, &chip, 4),
            Err(PartitionError::InputTooWide {
                layer: 0,
                cols: 5000,
                ..
            })
        ));
    }

    /// When the register files (not W memory) are what stops a tiling,
    /// the error must say so — a `ChipCapacity` here would claim
    /// "needs 2048 words, holds 65536", a self-contradiction.
    #[test]
    fn register_file_bound_layers_report_output_too_wide() {
        let chip = MachineConfig::default(); // 4096-entry files, 64K words
        let tall = fixed(&[16, 8192], 10); // 8192 rows × 16 cols: tiny W need
        assert_eq!(
            plan(&tall, &chip, 1),
            Err(PartitionError::OutputTooWide {
                layer: 0,
                rows: 8192,
                max: 4096,
                chips: 1,
            })
        );
        // With enough chips the same layer tiles fine.
        let p = plan(&tall, &chip, 2).unwrap();
        p.validate(&chip).unwrap();
        let msg = PartitionError::OutputTooWide {
            layer: 0,
            rows: 8192,
            max: 4096,
            chips: 1,
        }
        .to_string();
        assert!(
            msg.contains("8192") && msg.contains("register files"),
            "{msg}"
        );
    }

    #[test]
    fn uniform_row_costs_reproduce_the_plain_plan() {
        let chip = MachineConfig::default();
        let net = fixed(&[784, 512, 10], 21);
        let uniform: Vec<Vec<f64>> = net.layers().iter().map(|w| vec![1.0; w.rows()]).collect();
        for chips in [1usize, 2, 4] {
            assert_eq!(
                plan_with_row_costs(&net, &chip, chips, &uniform).unwrap(),
                plan(&net, &chip, chips).unwrap(),
                "{chips} chips"
            );
        }
    }

    #[test]
    fn skewed_activity_balances_expected_work_not_row_count() {
        let chip = MachineConfig::default();
        let net = fixed(&[64, 128, 10], 22);
        // Rows 0..64 almost always computed, rows 64..128 almost never.
        let activity: Vec<Vec<f64>> = net
            .layers()
            .iter()
            .map(|w| {
                (0..w.rows())
                    .map(|r| if r < 64 { 1.0 } else { 0.01 })
                    .collect()
            })
            .collect();
        let p = plan_with_row_costs(&net, &chip, 2, &activity).unwrap();
        p.validate(&chip).unwrap();
        // Expected load per chip (sum of activity over its tile) must be
        // near-even: each chip takes ~half the *hot* rows, instead of
        // one chip inheriting all of them by static-nnz balance.
        let hot_per_chip: Vec<usize> = p.layers()[0]
            .tiles
            .iter()
            .map(|tile| tile.iter().filter(|&&r| r < 64).count())
            .collect();
        assert_eq!(hot_per_chip.iter().sum::<usize>(), 64);
        assert!(
            hot_per_chip.iter().all(|&h| (28..=36).contains(&h)),
            "hot rows must split near-evenly: {hot_per_chip:?}"
        );
    }

    #[test]
    fn malformed_row_costs_are_rejected() {
        let chip = MachineConfig::default();
        let net = fixed(&[16, 32, 10], 23);
        let good: Vec<Vec<f64>> = net.layers().iter().map(|w| vec![0.5; w.rows()]).collect();
        assert!(plan_with_row_costs(&net, &chip, 2, &good).is_ok());
        for bad in [
            good[..1].to_vec(),                        // missing a layer
            vec![vec![0.5; 31], good[1].clone()],      // short row
            vec![vec![f64::NAN; 32], good[1].clone()], // non-finite
            vec![
                {
                    let mut v = good[0].clone();
                    v[0] = -1.0;
                    v
                },
                good[1].clone(),
            ],
        ] {
            assert!(matches!(
                plan_with_row_costs(&net, &chip, 2, &bad),
                Err(PartitionError::Invalid { .. })
            ));
        }
    }

    #[test]
    fn plan_text_roundtrips_bit_identically() {
        let chip = chip_with_words(4096);
        let net = fixed(&[784, 512, 10], 6);
        let p = plan(&net, &chip, 4).unwrap();
        let text = p.to_plan_string();
        let back = PartitionPlan::from_plan_str(&text).unwrap();
        assert_eq!(p, back);
        assert_eq!(text, back.to_plan_string());
        assert!(back.matches(&net));
    }

    #[test]
    fn malformed_plan_text_is_rejected() {
        let chip = chip_with_words(4096);
        let good = plan(&fixed(&[32, 64, 10], 7), &chip, 2)
            .unwrap()
            .to_plan_string();
        for broken in [
            String::from("not a plan"),
            good.replace("sparsenn-partition v1", "sparsenn-partition v9"),
            good.replace("chips 2", "chips x"),
            good.replace("tile 0", "tile 9"),
            good.lines().take(3).collect::<Vec<_>>().join("\n"),
        ] {
            assert!(
                matches!(
                    PartitionPlan::from_plan_str(&broken),
                    Err(PartitionError::Format { .. })
                ),
                "should reject {broken:?}"
            );
        }
        assert!(PartitionPlan::from_plan_str(&good).is_ok());
    }

    #[test]
    fn validate_catches_structural_damage() {
        let chip = chip_with_words(4096);
        let net = fixed(&[64, 128, 10], 8);
        let p = plan(&net, &chip, 2).unwrap();

        let mut dup = p.clone();
        let stolen = dup.layers[0].tiles[1][0];
        dup.layers[0].tiles[0].push(stolen);
        assert!(matches!(
            dup.validate(&chip),
            Err(PartitionError::Invalid { .. })
        ));

        let mut missing = p.clone();
        missing.layers[0].tiles[0].pop();
        assert!(matches!(
            missing.validate(&chip),
            Err(PartitionError::Invalid { .. })
        ));

        // A tile over capacity on a smaller chip is a ChipCapacity error.
        let tiny = chip_with_words(64);
        assert!(matches!(
            p.validate(&tiny),
            Err(PartitionError::ChipCapacity { .. })
        ));
    }

    #[test]
    fn errors_display_the_sizes() {
        let e = PartitionError::ChipCapacity {
            layer: 1,
            words: 6272,
            capacity: 4096,
            chips: 2,
        };
        let s = e.to_string();
        assert!(
            s.contains("6272") && s.contains("4096") && s.contains("2"),
            "{s}"
        );
    }
}
