//! The chip-level interconnect cost model.

use sparsenn_noc::tree_levels;

/// Link and flit parameters of the chip-to-chip interconnect — the
/// PE-level H-tree vocabulary of [`sparsenn_noc::NocConfig`] lifted one
/// level up.
///
/// The chips hang off a radix-[`radix`](Self::radix) tree of links; a
/// root "host" node feeds the downward broadcast and drains the upward
/// gather. Each link moves one flit per [`link_clock_ns`](Self::link_clock_ns)
/// cycle and adds [`hop_latency`](Self::hop_latency) cycles of
/// store-and-forward latency per hop, exactly like the on-chip
/// [`NocConfig::hop_latency`](sparsenn_noc::NocConfig::hop_latency) —
/// just with off-chip numbers: a default 1 GHz SerDes lane against the
/// machine's 500 MHz core, but 8 cycles per hop instead of 1.
///
/// An activation crosses the fabric as
/// [`flits_per_activation`](Self::flits_per_activation) flits (default 1:
/// a 32-bit flit carrying the 16-bit Q6.10 value plus its global row
/// index, the same index+value encoding as [`sparsenn_noc::ActFlit`]).
/// Only *nonzero* activations travel — the fabric extends the machine's
/// input-sparsity skipping across chips.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterChipConfig {
    /// Fan-out of the chip-level tree (children per link stage).
    pub radix: usize,
    /// Store-and-forward latency per hop, in link cycles.
    pub hop_latency: u64,
    /// Flits needed to move one (index, value) activation pair.
    pub flits_per_activation: u64,
    /// Link clock period, nanoseconds (1 ns = a 1 GHz SerDes lane).
    pub link_clock_ns: f64,
}

impl Default for InterChipConfig {
    fn default() -> Self {
        Self {
            radix: 2,
            hop_latency: 8,
            flits_per_activation: 1,
            link_clock_ns: 1.0,
        }
    }
}

impl InterChipConfig {
    /// A zero-cost interconnect: every transfer takes 0 cycles and 0
    /// flit-hops. The ablation baseline that isolates communication
    /// overhead (`comm = default − free`).
    pub fn free() -> Self {
        Self {
            radix: 2,
            hop_latency: 0,
            flits_per_activation: 0,
            link_clock_ns: 0.0,
        }
    }

    /// Tree depth over `chips` leaves (0 for a single chip).
    pub fn levels(&self, chips: usize) -> u64 {
        if chips <= 1 {
            0
        } else {
            tree_levels(chips, self.radix) as u64
        }
    }

    /// Number of links in the tree over `chips` leaves: each node below
    /// the root owns one uplink (6 links for 4 chips at radix 2).
    pub fn link_count(&self, chips: usize) -> u64 {
        let mut n = chips;
        let mut links = 0u64;
        while n > 1 {
            links += n as u64;
            n = n.div_ceil(self.radix);
        }
        links
    }

    /// Cycles to broadcast `values` activations from the root to every
    /// chip: the root serializes one flit per cycle down a pipelined
    /// tree, so the last flit lands `values × flits + depth × hop`
    /// cycles in. 0 for a single chip (nothing leaves the die) or an
    /// empty transfer.
    pub fn broadcast_cycles(&self, chips: usize, values: usize) -> u64 {
        if chips <= 1 || values == 0 {
            return 0;
        }
        values as u64 * self.flits_per_activation + self.hop_latency * self.levels(chips)
    }

    /// Cycles to gather `values` activations from the chips to the root.
    /// The root link is the serialization bottleneck (one flit per
    /// cycle), so the formula mirrors [`broadcast_cycles`](Self::broadcast_cycles).
    pub fn gather_cycles(&self, chips: usize, values: usize) -> u64 {
        self.broadcast_cycles(chips, values)
    }

    /// Flit-hops consumed broadcasting `values` activations: each flit is
    /// replicated down every link of the tree.
    pub fn broadcast_flit_hops(&self, chips: usize, values: usize) -> u64 {
        if chips <= 1 {
            return 0;
        }
        values as u64 * self.flits_per_activation * self.link_count(chips)
    }

    /// Flit-hops consumed gathering `values` activations: each flit
    /// climbs one path of `levels` links, root-ward.
    pub fn gather_flit_hops(&self, chips: usize, values: usize) -> u64 {
        if chips <= 1 {
            return 0;
        }
        values as u64 * self.flits_per_activation * self.levels(chips)
    }

    /// Wall-clock time for a link-cycle count, microseconds.
    pub fn time_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.link_clock_ns * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chip_costs_nothing() {
        let c = InterChipConfig::default();
        assert_eq!(c.broadcast_cycles(1, 1000), 0);
        assert_eq!(c.gather_cycles(1, 1000), 0);
        assert_eq!(c.broadcast_flit_hops(1, 1000), 0);
        assert_eq!(c.gather_flit_hops(1, 1000), 0);
        assert_eq!(c.levels(1), 0);
        assert_eq!(c.link_count(1), 0);
    }

    #[test]
    fn tree_shape_matches_the_radix() {
        let c = InterChipConfig::default(); // radix 2
        assert_eq!(c.levels(2), 1);
        assert_eq!(c.levels(4), 2);
        assert_eq!(c.levels(8), 3);
        assert_eq!(c.link_count(2), 2);
        assert_eq!(c.link_count(4), 6);
        assert_eq!(c.link_count(8), 14);
    }

    #[test]
    fn transfer_cost_is_serialization_plus_pipeline_latency() {
        let c = InterChipConfig::default();
        // 100 values over 4 chips: 100 flits + 2 hops × 8 cycles.
        assert_eq!(c.broadcast_cycles(4, 100), 116);
        assert_eq!(c.gather_cycles(4, 100), 116);
        // Broadcast replicates down all 6 links; gather climbs 2.
        assert_eq!(c.broadcast_flit_hops(4, 100), 600);
        assert_eq!(c.gather_flit_hops(4, 100), 200);
        // 116 cycles at 1 ns = 0.116 µs.
        assert!((c.time_us(116) - 0.116).abs() < 1e-12);
    }

    #[test]
    fn free_interconnect_is_genuinely_free() {
        let c = InterChipConfig::free();
        for chips in [2, 4, 8] {
            assert_eq!(c.broadcast_cycles(chips, 10_000), 0);
            assert_eq!(c.gather_cycles(chips, 10_000), 0);
            assert_eq!(c.broadcast_flit_hops(chips, 10_000), 0);
            assert_eq!(c.gather_flit_hops(chips, 10_000), 0);
        }
    }

    #[test]
    fn more_chips_cost_more_latency_and_hops() {
        let c = InterChipConfig::default();
        assert!(c.broadcast_cycles(8, 100) > c.broadcast_cycles(2, 100));
        assert!(c.broadcast_flit_hops(8, 100) > c.broadcast_flit_hops(2, 100));
    }
}
