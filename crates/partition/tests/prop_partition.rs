//! Property-based tests for the partition planner: every plan it emits
//! is structurally sound (tiles disjoint, exhaustive, within capacity)
//! and survives a serialization round trip bit-identically.

use proptest::prelude::*;
use sparsenn_linalg::init::seeded_rng;
use sparsenn_model::fixedpoint::FixedNetwork;
use sparsenn_model::Mlp;
use sparsenn_partition::{plan, plan_with_row_costs, PartitionPlan};
use sparsenn_sim::MachineConfig;

fn chip_with_words(words: usize) -> MachineConfig {
    MachineConfig {
        w_mem_bytes: words * 2,
        ..MachineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random networks, chip counts and W capacities, a successful
    /// plan validates: per layer the tiles are disjoint, exhaustive over
    /// `0..rows`, and each fits the chip. (Infeasible combinations must
    /// error, never panic.)
    #[test]
    fn plans_are_disjoint_exhaustive_and_within_capacity(
        seed in 0u64..1000,
        hidden in 16usize..200,
        inputs in 8usize..64,
        chips in 1usize..9,
        cap_words in 64usize..4096,
    ) {
        let net = FixedNetwork::from_mlp(
            &Mlp::random(&[inputs, hidden, 10], &mut seeded_rng(seed)));
        let chip = chip_with_words(cap_words);
        match plan(&net, &chip, chips) {
            Ok(p) => {
                prop_assert_eq!(p.chips(), chips);
                prop_assert!(p.validate(&chip).is_ok());
                prop_assert!(p.matches(&net));
                for (l, layer) in p.layers().iter().enumerate() {
                    // Disjoint + exhaustive, re-checked independently of
                    // validate(): every row exactly once.
                    let mut rows: Vec<usize> =
                        layer.tiles.iter().flatten().copied().collect();
                    rows.sort_unstable();
                    let expect: Vec<usize> = (0..layer.rows).collect();
                    prop_assert_eq!(&rows, &expect, "layer {}", l);
                    // Each tile fits the chip's W memory.
                    for tile in &layer.tiles {
                        let words = tile.len().div_ceil(chip.num_pes()) * layer.cols;
                        prop_assert!(words <= chip.w_capacity_words_per_pe());
                        prop_assert!(tile.len() <= chip.max_activations());
                    }
                }
            }
            Err(_) => {
                // Infeasible: even a perfectly even split of some layer
                // must overflow the chip (or the input is too wide).
                let infeasible = net.layers().iter().any(|w| {
                    let t = w.rows().div_ceil(chips);
                    let words = t.div_ceil(chip.num_pes()) * w.cols();
                    words > chip.w_capacity_words_per_pe()
                        || w.cols() > chip.max_activations()
                });
                prop_assert!(infeasible, "planner rejected a feasible network");
            }
        }
    }

    /// The text serialization round-trips every plan bit-identically.
    #[test]
    fn plan_serialization_roundtrips(
        seed in 0u64..1000,
        hidden in 16usize..200,
        chips in 1usize..9,
    ) {
        let net = FixedNetwork::from_mlp(
            &Mlp::random(&[24, hidden, 10], &mut seeded_rng(seed)));
        let chip = chip_with_words(2048);
        if let Ok(p) = plan(&net, &chip, chips) {
            let text = p.to_plan_string();
            let back = PartitionPlan::from_plan_str(&text).unwrap();
            prop_assert_eq!(&p, &back);
            prop_assert_eq!(text, back.to_plan_string());
        }
    }

    /// Balance: with equal-cost rows the largest and smallest tiles
    /// differ by at most one row.
    #[test]
    fn tiles_are_balanced_to_within_one_row(
        hidden in 32usize..256,
        chips in 1usize..9,
    ) {
        let net = FixedNetwork::from_mlp(
            &Mlp::random(&[16, hidden, 10], &mut seeded_rng(9)));
        let chip = MachineConfig::default();
        let p = plan(&net, &chip, chips).unwrap();
        for layer in p.layers() {
            let sizes: Vec<usize> = layer.tiles.iter().map(Vec::len).collect();
            let (min, max) = (
                sizes.iter().min().copied().unwrap(),
                sizes.iter().max().copied().unwrap(),
            );
            // Row weights vary, but every row weighs at least 1 and at
            // most cols+1, and the greedy assigns to the lightest chip:
            // counts can skew, yet never leave a chip starved while
            // another holds the excess beyond the weight imbalance. The
            // conservative structural bound: max ≤ 2·min + cols.
            prop_assert!(max <= 2 * min + layer.cols + 1, "{:?}", sizes);
        }
    }

    /// `plan` is exactly the uniform-cost wrapper of
    /// `plan_with_row_costs`: a cost table of all 1.0 reproduces the
    /// plain plan bit for bit, for random networks and chip counts.
    #[test]
    fn uniform_costs_reproduce_the_plain_plan(
        seed in 0u64..1000,
        hidden in 16usize..200,
        inputs in 8usize..64,
        chips in 1usize..9,
    ) {
        let net = FixedNetwork::from_mlp(
            &Mlp::random(&[inputs, hidden, 10], &mut seeded_rng(seed)));
        let chip = MachineConfig::default();
        let uniform: Vec<Vec<f64>> =
            net.layers().iter().map(|w| vec![1.0; w.rows()]).collect();
        prop_assert_eq!(
            plan_with_row_costs(&net, &chip, chips, &uniform).unwrap(),
            plan(&net, &chip, chips).unwrap()
        );
    }

    /// Activity-weighted plans stay structurally valid for arbitrary
    /// cost profiles — costs steer placement, never feasibility.
    #[test]
    fn activity_weighted_plans_validate(
        seed in 0u64..1000,
        hidden in 16usize..200,
        chips in 1usize..9,
        hot_fraction in 0.05f64..1.0,
    ) {
        let net = FixedNetwork::from_mlp(
            &Mlp::random(&[24, hidden, 10], &mut seeded_rng(seed)));
        let chip = MachineConfig::default();
        let costs: Vec<Vec<f64>> = net
            .layers()
            .iter()
            .map(|w| {
                (0..w.rows())
                    .map(|r| if (r as f64) < hot_fraction * w.rows() as f64 { 1.0 } else { 0.02 })
                    .collect()
            })
            .collect();
        let p = plan_with_row_costs(&net, &chip, chips, &costs).unwrap();
        prop_assert!(p.validate(&chip).is_ok());
        prop_assert!(p.matches(&net));
        // Expected load (sum of clamped activity) is near-balanced: no
        // chip holds more than its fair share plus one heaviest row.
        for (l, layer) in p.layers().iter().enumerate() {
            let load = |tile: &Vec<usize>| -> f64 {
                tile.iter().map(|&r| costs[l][r]).sum()
            };
            let loads: Vec<f64> = layer.tiles.iter().map(load).collect();
            let total: f64 = loads.iter().sum();
            let max = loads.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(
                max <= total / chips as f64 + 1.0 + 1e-9,
                "layer {}: expected-activity loads {:?} exceed fair share",
                l, loads
            );
        }
    }
}
