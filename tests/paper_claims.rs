//! The paper's quantitative claims, checked against the simulator on
//! controlled workloads (DESIGN.md §5 "sanity claims").

use sparsenn::energy::PowerModel;
use sparsenn::linalg::Matrix;
use sparsenn::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn::model::{DenseLayer, Mlp, PredictedNetwork, Predictor};
use sparsenn::numeric::Q6_10;
use sparsenn::sim::{Machine, MachineConfig};

/// Builds a paper-shaped network (1024-wide hidden layer, 16 rows/PE) with
/// a rank-1 predictor engineered to mark ≈`active_fraction` of the rows
/// active, i.i.d. per row: `U` has +1 entries for active rows and −1 for
/// the rest, `V` is a row of ones, so `sign(U·V·a) = sign(U · Σa)` with
/// `Σa > 0`. Independent per-row decisions give the per-PE spread of
/// active rows that real trained predictors show (the paper: "the number
/// of nonzero output activations predicted by the sparsity predictor also
/// varies from PE to PE") — that spread is what throttles the layer-1
/// cycle gain and produces the idle-cycle power savings.
fn engineered_network(active_fraction: f64) -> (FixedNetwork, Vec<Q6_10>) {
    let n = 784usize;
    let m = 1024usize;
    let w = Matrix::from_fn(m, n, |i, j| {
        (((i * 31 + j * 17) % 97) as f32 - 48.0) / 120.0
    });
    let out = Matrix::from_fn(10, m, |i, j| (((i + j * 13) % 29) as f32 - 14.0) / 60.0);
    let mlp = Mlp::new(vec![DenseLayer::new(w), DenseLayer::new(out)]);
    let mut rng = sparsenn::linalg::init::seeded_rng(0x00C1_A135);
    let mask: Vec<bool> = (0..m)
        .map(|_| rand::Rng::gen::<f64>(&mut rng) < active_fraction)
        .collect();
    let u = Matrix::from_fn(m, 1, |i, _| if mask[i] { 1.0 } else { -1.0 });
    let v = Matrix::from_fn(1, n, |_, _| 1.0);
    let net = PredictedNetwork::new(mlp, vec![Predictor::new(u, v)]);
    let fixed = FixedNetwork::from_float(&net);
    // 60 %-sparse, strictly positive input (so Σa > 0 as required).
    let x: Vec<f32> = (0..n)
        .map(|j| {
            if j % 5 < 2 {
                0.2 + ((j % 13) as f32) * 0.05
            } else {
                0.0
            }
        })
        .collect();
    let xq = fixed.quantize_input(&x);
    (fixed, xq)
}

#[test]
fn throughput_gain_lands_in_the_papers_10_to_70_percent_band() {
    // ρ = 0.5: the paper's typical first-hidden-layer operating point.
    let (net, x) = engineered_network(0.5);
    let machine = Machine::new(MachineConfig::default());
    let off = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::Off,
    );
    let on = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::On,
    );
    let reduction = 1.0 - on.cycles as f64 / off.cycles as f64;
    assert!(
        (0.10..=0.70).contains(&reduction),
        "cycle reduction {:.1}% outside the paper's 10–70% band (off {}, on {})",
        reduction * 100.0,
        off.cycles,
        on.cycles
    );
}

#[test]
fn deeper_sparsity_gives_deeper_reductions() {
    let machine = Machine::new(MachineConfig::default());
    let mut last_reduction = 0.0f64;
    for rho in [0.5f64, 0.75, 0.95] {
        let (net, x) = engineered_network(1.0 - rho);
        let off = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &x,
            true,
            UvMode::Off,
        );
        let on = machine.run_layer(
            &net.layers()[0],
            net.predictors().first(),
            &x,
            true,
            UvMode::On,
        );
        let reduction = 1.0 - on.cycles as f64 / off.cycles as f64;
        assert!(
            reduction > last_reduction,
            "reduction should grow with predicted sparsity (ρ={rho}: {:.2})",
            reduction
        );
        last_reduction = reduction;
    }
    assert!(
        last_reduction > 0.5,
        "ρ=0.9 should cut cycles by well over half"
    );
}

#[test]
fn power_reduction_is_substantial() {
    let (net, x) = engineered_network(0.5);
    let cfg = MachineConfig::default();
    let machine = Machine::new(cfg);
    let model = PowerModel::new(&cfg);
    let off = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::Off,
    );
    let on = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::On,
    );
    let p_off = model.estimate(&off.events).total_mw;
    let p_on = model.estimate(&on.events).total_mw;
    let reduction = 1.0 - p_on / p_off;
    // Paper: "around 50 %". Accept a generous band around it.
    assert!(
        (0.25..=0.75).contains(&reduction),
        "power reduction {:.1}% (off {p_off:.0} mW, on {p_on:.0} mW)",
        reduction * 100.0
    );
}

#[test]
fn energy_reduction_exceeds_cycle_reduction() {
    // Bypassed rows save a full W-memory read each — energy falls faster
    // than time.
    let (net, x) = engineered_network(0.5);
    let cfg = MachineConfig::default();
    let machine = Machine::new(cfg);
    let model = PowerModel::new(&cfg);
    let off = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::Off,
    );
    let on = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::On,
    );
    let e_off = model.estimate(&off.events).energy_uj;
    let e_on = model.estimate(&on.events).energy_uj;
    let cycle_ratio = on.cycles as f64 / off.cycles as f64;
    let energy_ratio = e_on / e_off;
    assert!(
        energy_ratio < cycle_ratio,
        "energy ratio {energy_ratio:.2} should beat cycle ratio {cycle_ratio:.2}"
    );
}

#[test]
fn uv_off_is_the_eie_baseline_predictor_agnostic() {
    // With the predictor disabled the machine must behave identically
    // whether or not a predictor is even attached — it *is* EIE then.
    let (net, x) = engineered_network(0.5);
    let machine = Machine::new(MachineConfig::default());
    let with = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &x,
        true,
        UvMode::Off,
    );
    let without = machine.run_layer(&net.layers()[0], None, &x, true, UvMode::Off);
    assert_eq!(with.output, without.output);
    assert_eq!(with.cycles, without.cycles);
    assert_eq!(with.events, without.events);
}

#[test]
fn v_phase_keeps_pes_busy_at_rank_16() {
    // §V.C: "The utilization rate of the V computation is closed to 100%
    // even when the rank size r is as low as 16." With column-based
    // scheduling every participating PE computes r × (local nonzeros)
    // MACs; check the V/U phase cost is near the analytic lower bound.
    let n = 784usize;
    let m = 1024usize;
    let r = 16usize;
    let w = Matrix::from_fn(m, n, |i, j| ((i + j) % 7) as f32 * 0.02 - 0.06);
    let out = Matrix::from_fn(10, m, |_, j| (j % 5) as f32 * 0.01);
    let mlp = Mlp::new(vec![DenseLayer::new(w), DenseLayer::new(out)]);
    let u = Matrix::from_fn(m, r, |i, t| if (i + t) % 3 == 0 { 0.05 } else { -0.02 });
    let v = Matrix::from_fn(r, n, |t, j| ((t + j) % 11) as f32 * 0.01 - 0.04);
    let net = FixedNetwork::from_float(&PredictedNetwork::new(mlp, vec![Predictor::new(u, v)]));
    let x: Vec<f32> = (0..n).map(|j| if j % 2 == 0 { 0.3 } else { 0.0 }).collect();
    let xq = net.quantize_input(&x);
    let nnz = xq.iter().filter(|v| !v.is_zero()).count();

    let machine = Machine::new(MachineConfig::default());
    let run = machine.run_layer(
        &net.layers()[0],
        net.predictors().first(),
        &xq,
        true,
        UvMode::On,
    );
    // Lower bound: V MACs r×⌈nnz/64⌉ plus U MACs r×(m/64), perfectly
    // overlapped. Allow 2× for reduction/broadcast latency.
    let v_bound = r as u64 * (nnz as u64).div_ceil(64);
    let u_bound = r as u64 * (m as u64 / 64);
    assert!(
        run.vu_cycles <= 2 * (v_bound + u_bound),
        "V/U phase {} cycles vs bound {} — utilization too low",
        run.vu_cycles,
        v_bound + u_bound
    );
}
