//! Cross-request batching contract, end to end through the facade:
//! batched execution is bit-identical to serial runs on every backend,
//! batch timing never loses to the serial loop, the fleet's batch policy
//! chunks and accounts dispatches, and the queue-aware batching simulator
//! turns an amortized service table into a throughput win.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{
    BatchPolicy, CycleAccurateBackend, FirstIdle, Fleet, GoldenBackend, InferenceBackend, Priority,
};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::numeric::Q6_10;
use sparsenn::serve::{simulate_batched, BatchShardSpec, MetricsMode, Workload};
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

fn test_inputs(sys: &TrainedSystem, n: usize) -> Vec<Vec<Q6_10>> {
    let test = &sys.split().test;
    (0..n)
        .map(|i| sys.fixed().quantize_input(test.image(i % test.len())))
        .collect()
}

/// The acceptance criterion: every per-sample record of a batched machine
/// dispatch equals its own serial run exactly, and the batch clock never
/// exceeds the serial sum (amortization only ever removes W work).
#[test]
fn batched_machine_is_bit_identical_to_serial() {
    let sys = small_system();
    let backend = CycleAccurateBackend::new(sys.machine().clone());
    let inputs = test_inputs(&sys, 6);
    for mode in [UvMode::Off, UvMode::On] {
        let serial: Vec<_> = inputs
            .iter()
            .map(|x| backend.run(sys.fixed(), x, mode).unwrap())
            .collect();
        for b in 1..=inputs.len() {
            let rec = backend.run_batch(sys.fixed(), &inputs[..b], mode).unwrap();
            assert_eq!(rec.records.len(), b);
            for (s, (batched, own)) in rec.records.iter().zip(&serial[..b]).enumerate() {
                assert_eq!(batched, own, "B={b} sample {s} ({mode:?})");
            }
            assert!(
                rec.batch_time_us <= rec.serial_time_us() + 1e-9,
                "B={b}: batch {} µs must not exceed serial {} µs",
                rec.batch_time_us,
                rec.serial_time_us()
            );
            assert!(rec.w_reads_amortized <= rec.w_reads_serial);
            assert!(rec.w_read_amortization() >= 1.0);
        }
    }
}

/// Backends without a native batch path serve batches through the default
/// serial loop: same records, batch time exactly the serial sum.
#[test]
fn default_batch_path_is_the_serial_loop() {
    let sys = small_system();
    let backend = GoldenBackend::new();
    let inputs = test_inputs(&sys, 4);
    let serial: Vec<_> = inputs
        .iter()
        .map(|x| backend.run(sys.fixed(), x, UvMode::On).unwrap())
        .collect();
    let rec = backend.run_batch(sys.fixed(), &inputs, UvMode::On).unwrap();
    assert_eq!(rec.records.len(), serial.len());
    for (batched, own) in rec.records.iter().zip(&serial) {
        assert_eq!(batched, own);
    }
    assert!((rec.batch_time_us - rec.serial_time_us()).abs() < 1e-9);
    assert_eq!(rec.w_reads_serial, rec.w_reads_amortized);
}

/// The fleet's batch policy chunks a batch across shards and the shard
/// stats account for every dispatched chunk and sample.
#[test]
fn fleet_batch_policy_chunks_and_accounts() {
    let sys = small_system();
    let fleet = Fleet::of_machines(2, *sys.machine().config())
        .unwrap()
        .with_batch_policy(BatchPolicy::SizeOrDeadline {
            max: 3,
            deadline_us: 50.0,
        });
    let inputs = test_inputs(&sys, 7);
    let rec = fleet
        .run_batch_classified(sys.fixed(), &inputs, UvMode::On, Priority::High)
        .unwrap();
    assert_eq!(
        rec.records.len(),
        7,
        "the folded record carries every sample"
    );

    // Per-sample results are still bit-identical to serial runs.
    let oracle = CycleAccurateBackend::new(sys.machine().clone());
    for (s, (batched, x)) in rec.records.iter().zip(&inputs).enumerate() {
        let own = oracle.run(sys.fixed(), x, UvMode::On).unwrap();
        assert_eq!(batched, &own, "sample {s}");
    }

    // 7 samples in chunks of ≤ 3: 3 dispatches, none bigger than the cap.
    let stats = fleet.shard_stats();
    assert_eq!(stats.iter().map(|s| s.batches).sum::<u64>(), 3);
    assert_eq!(stats.iter().map(|s| s.batch_samples).sum::<u64>(), 7);
    assert!(stats.iter().all(|s| s.max_batch <= 3));
    assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 7);

    assert!(matches!(
        fleet.run_batch_classified(sys.fixed(), &[], UvMode::On, Priority::High),
        Err(SparseNnError::EmptyBatch)
    ));
}

/// The queue-aware simulator turns an amortized batch-service table into
/// shard throughput under saturation: a batch cap of 4 beats serving
/// every request alone on the same table and load.
#[test]
fn batching_simulator_shows_the_throughput_win() {
    // Batch of b costs 10 + 2(b-1) µs — a strong amortization table.
    let table: Vec<f64> = (1..=4).map(|b| 10.0 + 2.0 * (b as f64 - 1.0)).collect();
    let spec = BatchShardSpec::with_table("shard", table);
    let run = |cap: usize| {
        simulate_batched(
            std::slice::from_ref(&spec),
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: cap,
                deadline_us: 200.0,
            },
            &Workload::Poisson {
                rate_rps: 250_000.0, // 2.5x the serial capacity of 100k rps
                requests: 2000,
                seed: 99,
            },
            MetricsMode::Streaming,
        )
        .unwrap()
    };
    let serial = run(1);
    let batched = run(4);
    assert_eq!(serial.requests, 2000);
    assert_eq!(batched.requests, 2000);
    assert!(
        batched.throughput_rps > serial.throughput_rps * 1.5,
        "batched {} rps vs serial {} rps",
        batched.throughput_rps,
        serial.throughput_rps
    );
    assert!(batched.mean_batch > 2.0, "saturation fills batches");
    assert!(batched.max_batch <= 4);
}
