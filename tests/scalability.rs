//! The paper's scalability claim: SparseNN is "a scalable architecture
//! with distributed memories and processing elements". These tests check
//! that machines of different sizes (one H-tree level less or more)
//! compute identical results and that throughput scales with PE count.

use sparsenn::linalg::init::seeded_rng;
use sparsenn::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn::model::{Mlp, PredictedNetwork};
use sparsenn::noc::NocConfig;
use sparsenn::sim::{Machine, MachineConfig};

fn machine_with(num_pes: usize) -> Machine {
    Machine::new(MachineConfig {
        noc: NocConfig {
            num_pes,
            ..NocConfig::default()
        },
        ..MachineConfig::default()
    })
}

fn workload() -> (FixedNetwork, Vec<sparsenn::numeric::Q6_10>) {
    let mut rng = seeded_rng(0x5CA1E);
    let mlp = Mlp::random(&[256, 512, 10], &mut rng);
    let net =
        FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 12, &mut rng));
    let x: Vec<f32> = (0..256)
        .map(|i| {
            if i % 3 == 0 {
                ((i as f32) * 0.37).sin().abs()
            } else {
                0.0
            }
        })
        .collect();
    let xq = net.quantize_input(&x);
    (net, xq)
}

#[test]
fn results_are_identical_across_machine_sizes() {
    let (net, x) = workload();
    let reference = machine_with(64).run_network(&net, &x, UvMode::On);
    for pes in [16usize, 256] {
        let run = machine_with(pes).run_network(&net, &x, UvMode::On);
        for (l, (r, g)) in run.layers.iter().zip(&reference.layers).enumerate() {
            assert_eq!(r.output, g.output, "{pes} PEs, layer {l}");
            assert_eq!(r.mask, g.mask, "{pes} PEs, layer {l} mask");
        }
    }
}

#[test]
fn throughput_scales_with_pe_count() {
    let (net, x) = workload();
    let c16 = machine_with(16)
        .run_network(&net, &x, UvMode::Off)
        .total_cycles();
    let c64 = machine_with(64)
        .run_network(&net, &x, UvMode::Off)
        .total_cycles();
    let c256 = machine_with(256)
        .run_network(&net, &x, UvMode::Off)
        .total_cycles();
    assert!(
        c16 > c64 && c64 > c256,
        "cycles must fall with PEs: {c16} {c64} {c256}"
    );
    // 4× the PEs should recover at least 2× throughput on this
    // compute-bound layer (perfect scaling is 4×; broadcast floors and
    // tree latency eat some of it).
    assert!(
        c16 as f64 / c64 as f64 > 2.0,
        "16→64 speedup {:.2}",
        c16 as f64 / c64 as f64
    );
}

#[test]
fn per_pe_memory_traffic_shrinks_with_more_pes() {
    let (net, x) = workload();
    let small = machine_with(16).run_layer(&net.layers()[0], None, &x, true, UvMode::Off);
    let large = machine_with(256).run_layer(&net.layers()[0], None, &x, true, UvMode::Off);
    // Total W reads are workload-determined and machine-independent…
    assert_eq!(small.events.w_reads, large.events.w_reads);
    // …but the per-PE share (bandwidth per memory) drops 16×: the
    // distributed-memory argument of Table IV.
    assert_eq!(small.pe_busy.len(), 16);
    assert_eq!(large.pe_busy.len(), 256);
    let max_small = small.pe_busy.iter().max().unwrap();
    let max_large = large.pe_busy.iter().max().unwrap();
    assert!(
        max_small / max_large >= 8,
        "per-PE work {max_small} vs {max_large}"
    );
}
