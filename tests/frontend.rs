//! Acceptance tests for the production front end (ISSUE 6): under a
//! ≥1.5× overload, bounded per-class admission keeps the high-priority
//! p99 inside its SLO while low-priority traffic absorbs the shedding;
//! with one injected shard failure, hedged/retrying dispatch strictly
//! beats the unhedged baseline on goodput; seeded workloads and fault
//! plans are bit-deterministic; and the autoscaler grows into a burst
//! (paying warm-up) and retires idle shards after it.

use sparsenn::engine::{AdmitAll, BoundedQueues, LeastQueued, Priority};
use sparsenn::frontend::{
    simulate_frontend, AutoscaleConfig, Fault, FaultPlan, FrontendConfig, HedgeConfig, SloPolicy,
};
use sparsenn::serve::{fleet_capacity_rps, simulate, ShardSpec, Workload};

/// Four uniform 10 µs shards: 100k rps each, 400k rps fleet capacity.
fn fleet() -> Vec<ShardSpec> {
    (0..4)
        .map(|i| ShardSpec::uniform(format!("shard-{i}"), 10.0))
        .collect()
}

const SLO: SloPolicy = SloPolicy {
    high_us: 300.0,
    low_us: 1200.0,
};

/// Acceptance: at 1.5× capacity with 35% low-priority traffic, bounded
/// per-class queues shed load (mostly low-priority) and hold the
/// high-priority p99 inside the SLO; unbounded admission lets the queue
/// grow until the high-priority p99 busts it.
#[test]
fn bounded_admission_keeps_high_priority_p99_within_slo_under_overload() {
    let fleet = fleet();
    let cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: fleet_capacity_rps(&fleet) * 1.5,
            requests: 4000,
            seed: 6,
        },
        SLO,
    )
    .low_fraction(0.35);

    let gate = BoundedQueues::new(12, 6).degrade_low_beyond(2);
    let bounded = simulate_frontend(&fleet, &LeastQueued, &gate, &cfg).unwrap();
    let open = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &cfg).unwrap();

    let high_p99 = bounded.class(Priority::High).latency.p99_us;
    assert!(
        high_p99 <= SLO.high_us,
        "bounded high-priority p99 {high_p99} µs must sit inside the {} µs SLO",
        SLO.high_us
    );
    assert!(
        open.class(Priority::High).latency.p99_us > SLO.high_us,
        "admit-all under 1.5x overload must bust the high-priority SLO"
    );
    assert!(
        bounded.class(Priority::Low).shed_rate() > bounded.class(Priority::High).shed_rate(),
        "low-priority absorbs the overload: low shed rate {} vs high {}",
        bounded.class(Priority::Low).shed_rate(),
        bounded.class(Priority::High).shed_rate()
    );
    assert!(
        bounded.class(Priority::Low).degraded > 0,
        "the degrade tier serves some low-priority traffic at reduced cost"
    );
    assert!(
        bounded.goodput_rps > open.goodput_rps,
        "shedding beats queueing on goodput: {} vs {}",
        bounded.goodput_rps,
        open.goodput_rps
    );
}

/// Acceptance: with one injected shard failure, hedged dispatch (retries
/// re-issue the killed attempts, hedges race stragglers) strictly beats
/// the unhedged baseline on goodput.
#[test]
fn hedged_goodput_strictly_beats_unhedged_with_an_injected_failure() {
    let fleet = fleet();
    let horizon = 3000.0 / (fleet_capacity_rps(&fleet) * 0.9) * 1e6;
    let cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: fleet_capacity_rps(&fleet) * 0.9,
            requests: 3000,
            seed: 6,
        },
        SLO,
    )
    .faults(FaultPlan::new(vec![Fault::FailStop {
        shard: 0,
        at_us: horizon * 0.3,
        down_us: horizon * 0.1,
    }]));

    let unhedged = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &cfg).unwrap();
    // Hedge only genuinely stuck attempts (20× the 10 µs service time);
    // the retry side of the policy is what recovers the killed work.
    let hedged_cfg = cfg.clone().hedge(HedgeConfig::hedged(200.0));
    let hedged = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &hedged_cfg).unwrap();

    assert!(
        unhedged.class(Priority::High).failed > 0,
        "the fail-stop must kill in-flight work for the comparison to bite"
    );
    assert_eq!(
        hedged.class(Priority::High).failed,
        0,
        "retries recover every killed attempt"
    );
    assert!(hedged.retries > 0, "the recovery shows up in the counters");
    assert!(
        hedged.goodput_rps > unhedged.goodput_rps,
        "hedged goodput {} must strictly beat unhedged {}",
        hedged.goodput_rps,
        unhedged.goodput_rps
    );
}

/// Satellite: seeded workloads are bit-deterministic — the same seed
/// replays the identical trace for every workload shape, through both
/// the serve simulator and the front end.
#[test]
fn same_seed_replays_the_identical_trace_for_every_workload_shape() {
    let fleet = fleet();
    let capacity = fleet_capacity_rps(&fleet);
    let workloads = [
        Workload::Poisson {
            rate_rps: capacity * 0.8,
            requests: 1500,
            seed: 42,
        },
        Workload::Bursty {
            low_rps: capacity * 0.2,
            high_rps: capacity * 1.6,
            period_us: 400.0,
            duty: 0.25,
            requests: 1500,
            seed: 42,
        },
        Workload::ClosedLoop {
            concurrency: 8,
            requests: 1500,
            think_us: 5.0,
        },
    ];
    for workload in &workloads {
        let a = simulate(&fleet, &LeastQueued, workload).unwrap();
        let b = simulate(&fleet, &LeastQueued, workload).unwrap();
        assert_eq!(a, b, "serve trace must replay bit-identically");

        let cfg = FrontendConfig::new(*workload, SLO)
            .low_fraction(0.3)
            .faults(FaultPlan::random(fleet.len(), 10_000.0, 1, 1, 9))
            .hedge(HedgeConfig::hedged(200.0));
        let a = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &cfg).unwrap();
        let b = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &cfg).unwrap();
        assert_eq!(a, b, "front-end trace must replay bit-identically");
    }
}

/// Satellite: seeded fault plans are deterministic in the seed — and
/// actually vary with it.
#[test]
fn fault_schedules_are_a_pure_function_of_their_seed() {
    let a = FaultPlan::random(4, 50_000.0, 2, 2, 7);
    let b = FaultPlan::random(4, 50_000.0, 2, 2, 7);
    assert_eq!(a, b, "same seed, same schedule");
    let c = FaultPlan::random(4, 50_000.0, 2, 2, 8);
    assert_ne!(a, c, "different seed, different schedule");
    assert!(a.validate(4).is_ok());
}

/// Acceptance: starting from one shard, the autoscaler grows into a
/// burst (paying the warm-up delay before the new shards take traffic)
/// and retires idle shards in the quiet phase; a warm-up longer than the
/// whole run leaves the fleet stuck at its minimum.
#[test]
fn autoscaler_grows_into_the_burst_and_retires_idle_shards() {
    let fleet = fleet();
    let capacity = fleet_capacity_rps(&fleet);
    let workload = Workload::Bursty {
        low_rps: capacity * 0.1,
        high_rps: capacity * 0.9,
        period_us: 800.0,
        duty: 0.3,
        requests: 4000,
        seed: 11,
    };
    let scaled_cfg =
        FrontendConfig::new(workload, SLO).autoscale(AutoscaleConfig::new(1, 4, 200.0, 100.0));
    let scaled = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &scaled_cfg).unwrap();
    assert!(scaled.scale_outs > 0, "the burst must trigger scale-out");
    assert!(
        scaled.scale_ins > 0,
        "the quiet phase must trigger scale-in"
    );
    assert!(
        scaled.peak_active_shards > 1 && scaled.peak_active_shards <= 4,
        "peak {} must stay inside the 1..=4 band",
        scaled.peak_active_shards
    );

    // Warm-up longer than the run: scale-out decisions are taken but no
    // shard ever becomes ready, so all traffic rides the minimum fleet.
    let stuck_cfg =
        FrontendConfig::new(workload, SLO).autoscale(AutoscaleConfig::new(1, 4, 200.0, 1e9));
    let stuck = simulate_frontend(&fleet, &LeastQueued, &AdmitAll, &stuck_cfg).unwrap();
    assert_eq!(
        stuck.peak_active_shards, 1,
        "an unpayable warm-up pins the fleet at min_shards"
    );
    assert!(
        scaled.slo_attainment > stuck.slo_attainment,
        "paying the warm-up must buy SLO attainment: {} vs {}",
        scaled.slo_attainment,
        stuck.slo_attainment
    );
}
