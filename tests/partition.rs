//! Model-parallelism acceptance tests — the contract of ISSUE 4:
//!
//! 1. `PartitionedMachine` output is **bit-identical** to the single-chip
//!    `Machine` for any network that fits one chip (the oracle);
//! 2. an oversized MLP — rejected by the machine with the typed
//!    `WMemoryOverflow` — runs to completion on ≥2 chips with
//!    comm-inclusive `time_us`/`energy_uj`;
//! 3. the backend composes unchanged with `Session`, `Fleet`, every
//!    `Scheduler`, and the `sparsenn-serve` virtual-time simulator.
//!
//! The CI `partition-smoke` step runs this file in release mode.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{FastestCompletion, Fleet, InferenceBackend, PartitionedMachine};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::partition::{InterChipConfig, PartitionPlan};
use sparsenn::serve::{simulate, FirstIdle, LeastQueued, ShardSpec, Workload};
use sparsenn::sim::MachineConfig;
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

/// A system whose first layer overflows its own (shrunken) chip: 96 rows
/// over 64 PEs needs 2 rows/PE × 784 cols = 1568 words against 1024.
fn oversized_system() -> TrainedSystem {
    let chip = MachineConfig {
        w_mem_bytes: 2 * 1024,
        ..MachineConfig::default()
    };
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 96, 10])
        .rank(4)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(100)
        .test_samples(30)
        .epochs(1)
        .machine(chip)
        .build()
}

/// Oracle: for a network that fits one chip, every partitioned chip
/// count reproduces the single machine's outputs and masks bit for bit.
#[test]
fn partitioned_outputs_are_bit_identical_to_the_single_machine() {
    let sys = small_system();
    let cfg = *sys.machine().config();
    let single = sys.session();
    for chips in [1usize, 2, 4, 8] {
        let part = sys.partitioned_session(chips).expect("plannable");
        for mode in [UvMode::Off, UvMode::On] {
            for i in 0..6 {
                let a = single.run_sample(i, mode).unwrap();
                let b = part.run_sample(i, mode).unwrap();
                for (l, (want, got)) in a.layers.iter().zip(&b.layers).enumerate() {
                    assert_eq!(
                        want.output, got.output,
                        "{chips} chips, sample {i}, layer {l}, {mode:?}"
                    );
                    assert_eq!(want.mask, got.mask, "{chips} chips, sample {i} mask");
                }
            }
        }
        // The raw-backend view agrees with the session view.
        let pm =
            PartitionedMachine::new(sys.fixed(), cfg, chips, InterChipConfig::default()).unwrap();
        let x = sys.fixed().quantize_input(sys.split().test.image(0));
        assert_eq!(
            pm.run(sys.fixed(), &x, UvMode::On).unwrap().output(),
            single.run_sample(0, UvMode::On).unwrap().output()
        );
    }
}

/// Acceptance: the oversized MLP is rejected by the machine with the
/// typed overflow and served to completion on ≥2 chips, with
/// communication visible in both latency and energy.
#[test]
fn oversized_mlp_is_served_by_two_chips_with_comm_in_the_accounting() {
    let sys = oversized_system();

    // Single chip: typed rejection from both serving and planning paths.
    match sys.session().simulate_batch(4, UvMode::On) {
        Err(SparseNnError::WMemoryOverflow {
            layer,
            words,
            capacity,
        }) => {
            assert_eq!(layer, 0);
            assert_eq!(words, 1568);
            assert_eq!(capacity, 1024);
        }
        other => panic!("expected WMemoryOverflow, got {other:?}"),
    }
    match sys.partitioned_session(1).map(|_| ()) {
        Err(SparseNnError::WMemoryOverflow {
            words, capacity, ..
        }) => {
            assert_eq!((words, capacity), (1568, 1024));
        }
        other => panic!("expected WMemoryOverflow from the planner, got {other:?}"),
    }

    // Two chips serve the whole batch; classification works end to end.
    let session = sys.partitioned_session(2).expect("two chips fit");
    let summary = session.simulate_batch(8, UvMode::On).expect("serves");
    assert_eq!(summary.samples, 8);
    assert!(summary.time_us() > 0.0, "comm-inclusive latency");
    assert!(summary.energy_uj() > 0.0, "comm-inclusive energy");
    assert!(
        summary
            .layers
            .iter()
            .map(|l| l.events.interchip_flit_hops)
            .sum::<u64>()
            > 0,
        "inter-chip traffic must be accounted"
    );
    assert!(summary.layers[0].power.interchip_mw > 0.0);

    // Against free links, the costed interconnect only adds time and
    // energy — never changes bits.
    let chip = *sys.machine().config();
    let costed = PartitionedMachine::new(sys.fixed(), chip, 2, InterChipConfig::default()).unwrap();
    let free = PartitionedMachine::new(sys.fixed(), chip, 2, InterChipConfig::free()).unwrap();
    let x = sys.fixed().quantize_input(sys.split().test.image(0));
    let a = costed.run(sys.fixed(), &x, UvMode::On).unwrap();
    let b = free.run(sys.fixed(), &x, UvMode::On).unwrap();
    assert_eq!(a.output(), b.output());
    assert!(a.time_us() > b.time_us());
}

/// Composition: the partitioned backend is an ordinary
/// `InferenceBackend`, so parallel `Session` batches fold bit-identically
/// to the serial path, and a `Fleet` of partitioned multi-chip replicas
/// (with any scheduler) behaves like one.
#[test]
fn partitioned_backend_composes_with_session_and_fleet() {
    let sys = oversized_system();
    let chip = *sys.machine().config();

    let serial = sys
        .partitioned_session(2)
        .unwrap()
        .simulate_batch_serial(12, UvMode::On)
        .unwrap();
    let parallel = sys
        .partitioned_session(2)
        .unwrap()
        .simulate_batch(12, UvMode::On)
        .unwrap();
    assert_eq!(
        serial, parallel,
        "parallel fold must match the serial oracle"
    );

    // A fleet of two 2-chip replicas behind one queue, latency-aware
    // dispatch: same bits, every sample accounted.
    let replica = || -> Box<dyn InferenceBackend> {
        Box::new(PartitionedMachine::new(sys.fixed(), chip, 2, InterChipConfig::default()).unwrap())
    };
    let fleet = Fleet::new(vec![replica(), replica()])
        .unwrap()
        .with_scheduler(Box::new(FastestCompletion))
        .with_service_alpha(0.2);
    assert_eq!(
        fleet.name(),
        "fleet(2x partitioned(2 chips x cycle-accurate))"
    );
    let fleet_summary = sys
        .session_with(Box::new(fleet))
        .with_workers(2)
        .simulate_batch(12, UvMode::On)
        .unwrap();
    assert_eq!(
        serial, fleet_summary,
        "fleet of replicas stays bit-identical"
    );
}

/// Composition with the virtual-time simulator: the partitioned
/// backend's per-sample `time_us` table drives `sparsenn-serve` under
/// every scheduler.
#[test]
fn partitioned_time_tables_drive_the_serving_simulator() {
    let sys = oversized_system();
    let mut table = Vec::new();
    sys.partitioned_session(2)
        .unwrap()
        .stream_batch(8, UvMode::On, |_, record| table.push(record.time_us()))
        .unwrap();
    assert_eq!(table.len(), 8);
    assert!(table.iter().all(|&t| t > 0.0));

    let shards = vec![
        ShardSpec::with_table("partitioned-2chip", table.clone()),
        ShardSpec::with_table("partitioned-2chip", table),
    ];
    let workload = Workload::Poisson {
        rate_rps: 10_000.0,
        requests: 400,
        seed: 3,
    };
    for scheduler in [
        &FirstIdle as &dyn sparsenn::engine::Scheduler,
        &LeastQueued,
        &FastestCompletion,
    ] {
        let summary = simulate(&shards, scheduler, &workload).unwrap();
        assert_eq!(summary.requests, 400, "{}", scheduler.name());
        assert!(summary.latency.p95_us > 0.0);
    }
}

/// The plan itself: `TrainedSystem::partition_plan` matches what the
/// partitioned session executes, validates, and round-trips through its
/// file format bit-identically.
#[test]
fn partition_plan_is_exposed_validated_and_persistable() {
    let sys = oversized_system();
    let chip = *sys.machine().config();
    let plan = sys.partition_plan(2).expect("plannable");
    plan.validate(&chip).expect("planner output validates");
    assert!(plan.matches(sys.fixed()));

    let path = std::env::temp_dir().join(format!(
        "sparsenn-partition-plan-test-{}.txt",
        std::process::id()
    ));
    plan.save(&path).expect("save");
    let reloaded = PartitionPlan::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(plan, reloaded, "plan file round-trips bit-identically");

    // A reloaded plan rebuilds the same deployment.
    let pm = PartitionedMachine::from_plan(sys.fixed(), chip, reloaded, InterChipConfig::default())
        .expect("reloaded plan executes");
    let x = sys.fixed().quantize_input(sys.split().test.image(1));
    let a = pm.run(sys.fixed(), &x, UvMode::On).unwrap();
    let b = sys
        .partitioned_session(2)
        .unwrap()
        .run_sample(1, UvMode::On)
        .unwrap();
    assert_eq!(a.layers, b.layers);
}
