//! Fleet serving contract: N simulated accelerators behind one queue
//! produce summaries bit-identical to a single serial machine, account for
//! every sample they serve, and carry per-backend latency through the
//! summary.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{CycleAccurateBackend, Fleet, GoldenBackend, InferenceBackend, SimdBackend};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::sim::simd::SimdPlatform;
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

/// The acceptance criterion: a fleet of N machine shards folds the exact
/// `SimulationSummary` the serial single-machine path produces.
#[test]
fn fleet_batches_are_bit_identical_to_serial_single_machine() {
    let sys = small_system();
    for mode in [UvMode::Off, UvMode::On] {
        let serial = sys
            .session()
            .simulate_batch_serial(24, mode)
            .expect("serial oracle");
        for shards in [1usize, 3, 4] {
            let fleet = sys.fleet_session(shards).unwrap();
            let parallel = fleet.simulate_batch(24, mode).unwrap();
            assert_eq!(
                serial, parallel,
                "{shards}-shard fleet, {mode:?}: summary must be bit-identical"
            );
            // And the fleet session's own serial path agrees too.
            let fleet_serial = sys
                .fleet_session(shards)
                .unwrap()
                .simulate_batch_serial(24, mode)
                .unwrap();
            assert_eq!(serial, fleet_serial, "{shards}-shard serial fold");
        }
    }
}

#[test]
fn more_workers_than_shards_blocks_instead_of_failing() {
    let sys = small_system();
    let fleet = Fleet::of_machines(2, *sys.machine().config()).unwrap();
    // 6 workers contend for 2 shards: callers queue on the dispatch lock.
    let session = sys.session_with(Box::new(fleet)).with_workers(6);
    let serial = sys.session().simulate_batch_serial(24, UvMode::On).unwrap();
    let parallel = session.simulate_batch(24, UvMode::On).unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn shard_stats_account_for_served_samples() {
    let sys = small_system();
    let fleet = Fleet::of_machines(4, *sys.machine().config()).unwrap();
    assert!(fleet.shard_stats().iter().all(|s| s.samples == 0));

    // What one sample costs on a lone machine, for comparison below.
    let per_sample_us = {
        let session = sys.session_with(Box::new(CycleAccurateBackend::new(sys.machine().clone())));
        session.run_sample(0, UvMode::On).unwrap().time_us()
    };
    assert!(per_sample_us > 0.0);

    let record = fleet
        .run(
            sys.fixed(),
            &sys.fixed().quantize_input(sys.split().test.image(0)),
            UvMode::On,
        )
        .unwrap();
    assert!((record.time_us() - per_sample_us).abs() < 1e-12);
    let stats = fleet.shard_stats();
    assert_eq!(stats.iter().map(|s| s.samples).sum::<u64>(), 1);
    assert!((stats[0].busy_us - per_sample_us).abs() < 1e-12);
}

#[test]
fn fleet_session_latency_flows_into_the_summary() {
    let sys = small_system();
    let summary = sys
        .fleet_session(3)
        .unwrap()
        .simulate_batch(12, UvMode::On)
        .unwrap();
    // Per-sample latency must match the machine clock model applied to the
    // per-sample mean cycles (both are means over the same records).
    let cfg = sys.machine().config();
    for layer in &summary.layers {
        assert!(layer.time_us > 0.0);
        assert!(
            (layer.time_us - cfg.time_us(1) * layer.cycles).abs() < 1e-9,
            "layer latency {} vs clock model {}",
            layer.time_us,
            cfg.time_us(1) * layer.cycles
        );
    }
    assert!(summary.time_us() > 0.0);
    assert!(summary.energy_uj() > 0.0);
}

#[test]
fn heterogeneous_fleet_still_classifies_bit_exactly() {
    let sys = small_system();
    // Outputs are bit-exact across substrates, so accuracy (a pure
    // function of outputs) is fleet-composition independent — even though
    // cycle aggregates would depend on dispatch order.
    let mixed = Fleet::new(vec![
        Box::new(CycleAccurateBackend::new(sys.machine().clone())) as Box<dyn InferenceBackend>,
        Box::new(GoldenBackend::new()),
        Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
    ])
    .unwrap();
    let mixed_summary = sys
        .session_with(Box::new(mixed))
        .with_workers(3)
        .simulate_batch(20, UvMode::On)
        .unwrap();
    let reference = sys.session().simulate_batch(20, UvMode::On).unwrap();
    assert_eq!(mixed_summary.fixed_accuracy, reference.fixed_accuracy);
    assert_eq!(mixed_summary.samples, reference.samples);
}

#[test]
fn zero_shard_fleet_session_is_an_error() {
    let sys = small_system();
    assert!(matches!(
        sys.fleet_session(0),
        Err(SparseNnError::EmptyFleet)
    ));
}
