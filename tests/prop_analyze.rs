//! Property tests for the trace-analytics invariants under random
//! seeds and loads: whatever the workload does, every request's
//! critical path stays within [longest phase, request span], the
//! four-phase attribution sums to the request latency, and the live
//! tail-exemplar reservoir equals the offline sort-and-take-K oracle.

use proptest::prelude::*;
use sparsenn::engine::LeastQueued;
use sparsenn::frontend::{
    simulate_frontend_traced, BoundedQueues, DegradeBatching, FrontendConfig, HedgeConfig,
    SloPolicy,
};
use sparsenn::obs::{analyze, offline_top_k, RingRecorder, TailExemplars, Tee};
use sparsenn::serve::{ShardSpec, Workload};

const SERVICE_US: f64 = 10.0;
const REQUESTS: usize = 300;

/// A 3-shard run at `rate_tenths`/10 × capacity with random class mix
/// and optional hedging, traced into a recorder teed with a reservoir.
fn traced_run(
    seed: u64,
    rate_tenths: u32,
    low_tenths: u32,
    hedged: bool,
    k: usize,
) -> (Vec<sparsenn::obs::Span>, Vec<sparsenn::obs::Exemplar>) {
    let fleet: Vec<ShardSpec> = (0..3)
        .map(|i| ShardSpec::uniform(format!("s{i}"), SERVICE_US))
        .collect();
    let capacity = 3.0e6 / SERVICE_US;
    let slo = SloPolicy {
        high_us: 12.0 * SERVICE_US,
        low_us: 48.0 * SERVICE_US,
    };
    let mut cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: f64::from(rate_tenths) * 0.1 * capacity,
            requests: REQUESTS,
            seed,
        },
        slo,
    )
    .low_fraction(f64::from(low_tenths) * 0.1)
    .degrade_batching(DegradeBatching::new(4, 8.0 * SERVICE_US, 0.3));
    if hedged {
        cfg = cfg.hedge(HedgeConfig::hedged(6.0 * SERVICE_US));
    }
    let gate = BoundedQueues::new(12, 4).degrade_low_beyond(2);
    let recorder = RingRecorder::new(1 << 16);
    let exemplars = TailExemplars::new(k);
    let sink = Tee::new(&recorder, &exemplars);
    simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &sink)
        .expect("random scenario configs are valid");
    (recorder.spans(), exemplars.exemplars())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The attribution contract, request by request: phases sum to the
    /// span, the critical path is a real path (≤ span, ≥ its longest
    /// constituent, steps in time order inside the request interval).
    #[test]
    fn critical_path_invariants_hold_under_random_loads(
        seed in 0u64..1_000,
        rate_tenths in 3u32..30, // 0.3× to 2.9× fleet capacity
        low_tenths in 0u32..10,
        hedged in any::<bool>(),
    ) {
        let (spans, _) = traced_run(seed, rate_tenths, low_tenths, hedged, 5);
        let analysis = analyze(&spans);
        prop_assert_eq!(analysis.requests.len(), REQUESTS);
        for r in &analysis.requests {
            prop_assert!(
                (r.phases_sum_us() - r.total_us).abs() <= 1e-6 * r.total_us.max(1.0),
                "request {}: phases {:?} vs total {}", r.trace_id, r.phase_us, r.total_us
            );
            let path = r.critical_path_us();
            prop_assert!(path <= r.total_us + 1e-9);
            prop_assert!(path + 1e-9 >= r.max_phase_us());
            for w in r.path.windows(2) {
                prop_assert!(w[0].end_us <= w[1].start_us + 1e-9);
            }
            if let Some(first) = r.path.first() {
                prop_assert!(first.start_us >= -1e-9);
            }
        }
    }

    /// The reservoir is exact whatever the stream does: the kept set
    /// equals an offline sort of every request by latency.
    #[test]
    fn exemplar_reservoir_matches_offline_top_k(
        seed in 0u64..1_000,
        rate_tenths in 3u32..30,
        k in 1usize..12,
    ) {
        let (spans, live) = traced_run(seed, rate_tenths, 4, false, k);
        prop_assert_eq!(live, offline_top_k(&spans, k));
    }
}
