//! The engine contract: every substrate behind [`InferenceBackend`] is
//! interchangeable, batches parallelize without changing results, and no
//! input reaches a panic through the public inference API.

use proptest::prelude::*;
use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{CycleAccurateBackend, GoldenBackend, InferenceBackend, SimdBackend};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::sim::simd::SimdPlatform;
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

#[test]
fn out_of_range_sample_returns_err_on_every_backend() {
    let sys = small_system();
    let backends: Vec<Box<dyn InferenceBackend>> = vec![
        Box::new(CycleAccurateBackend::default()),
        Box::new(GoldenBackend::new()),
        Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
    ];
    for backend in backends {
        let session = sys.session_with(backend);
        let name = session.backend_name().to_string();
        assert_eq!(
            session.run_sample(40, UvMode::On).unwrap_err(),
            SparseNnError::SampleOutOfRange { index: 40, len: 40 },
            "{name}"
        );
        assert!(session.run_sample(39, UvMode::On).is_ok(), "{name}");
    }
    // And through the TrainedSystem facade.
    assert!(matches!(
        sys.simulate_sample(usize::MAX, UvMode::On),
        Err(SparseNnError::SampleOutOfRange { .. })
    ));
}

#[test]
fn wrong_width_input_returns_err_not_panic() {
    let sys = small_system();
    let session = sys.session();
    assert_eq!(
        session.run_input(&[0.5; 10], UvMode::On).unwrap_err(),
        SparseNnError::InputWidthMismatch {
            expected: 784,
            got: 10
        }
    );
}

#[test]
fn empty_batch_yields_well_defined_summary() {
    let sys = small_system();
    for backend in [
        Box::new(GoldenBackend::new()) as Box<dyn InferenceBackend>,
        Box::new(CycleAccurateBackend::default()),
    ] {
        let summary = sys
            .session_with(backend)
            .simulate_batch(0, UvMode::On)
            .unwrap();
        assert_eq!(summary.samples, 0);
        assert_eq!(summary.fixed_accuracy, 0.0);
        assert_eq!(
            summary.layers.len(),
            2,
            "one entry per layer even when empty"
        );
        for layer in &summary.layers {
            assert_eq!(layer.cycles, 0.0);
            assert_eq!(layer.events.macs, 0);
        }
    }
}

#[test]
fn parallel_batch_matches_serial_batch_exactly() {
    let sys = small_system();
    // Pin 4 workers so the multi-threaded path runs even on a 1-core host.
    let session = sys.session().with_workers(4);
    for mode in [UvMode::Off, UvMode::On] {
        let serial = session.simulate_batch_serial(24, mode).unwrap();
        let parallel = session.simulate_batch(24, mode).unwrap();
        assert_eq!(
            serial, parallel,
            "{mode:?}: parallel summary must be bit-identical"
        );
    }
    // Oversized requests clamp identically too.
    let serial = session.simulate_batch_serial(10_000, UvMode::On).unwrap();
    let parallel = session.simulate_batch(10_000, UvMode::On).unwrap();
    assert_eq!(serial.samples, 40);
    assert_eq!(serial, parallel);
}

#[test]
fn streaming_delivers_every_sample_in_order() {
    let sys = small_system();
    let session = sys.session().with_workers(3);
    let mut seen = Vec::new();
    let summary = session
        .stream_batch(12, UvMode::On, |i, record| {
            assert!(!record.layers.is_empty());
            seen.push(i);
        })
        .unwrap();
    assert_eq!(seen, (0..12).collect::<Vec<_>>());
    assert_eq!(summary.samples, 12);
}

/// A substrate that refuses every request — exercises the parallel
/// collector's early-exit path.
struct AlwaysFailingBackend;

impl InferenceBackend for AlwaysFailingBackend {
    fn name(&self) -> &str {
        "always-failing"
    }
    fn run(
        &self,
        _net: &sparsenn::model::fixedpoint::FixedNetwork,
        _input: &[sparsenn::numeric::Q6_10],
        _mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        Err(SparseNnError::EmptyNetwork)
    }
}

#[test]
fn failing_backend_surfaces_first_error_without_hanging() {
    let sys = small_system();
    let session = sys
        .session_with(Box::new(AlwaysFailingBackend))
        .with_workers(4);
    // Workers race ahead; the collector must return the lowest-indexed
    // failure and wind the pool down cleanly.
    assert_eq!(
        session.simulate_batch(16, UvMode::On).unwrap_err(),
        SparseNnError::EmptyNetwork
    );
    // The serial oracle agrees.
    assert_eq!(
        session.simulate_batch_serial(16, UvMode::On).unwrap_err(),
        SparseNnError::EmptyNetwork
    );
}

/// A substrate that panics — the engine must contain the unwind instead of
/// deadlocking the pool or re-raising through `thread::scope`.
struct PanickingBackend;

impl InferenceBackend for PanickingBackend {
    fn name(&self) -> &str {
        "panicking"
    }
    fn run(
        &self,
        _net: &sparsenn::model::fixedpoint::FixedNetwork,
        _input: &[sparsenn::numeric::Q6_10],
        _mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        panic!("backend blew up");
    }
}

#[test]
fn panicking_backend_becomes_worker_panicked_error() {
    let sys = small_system();
    let session = sys.session_with(Box::new(PanickingBackend)).with_workers(4);
    // Batch larger than the permit window: without panic containment this
    // deadlocks (the unwinding worker keeps its permit forever).
    assert_eq!(
        session.simulate_batch(40, UvMode::On).unwrap_err(),
        SparseNnError::WorkerPanicked
    );
}

#[test]
fn batch_through_the_facade_matches_the_session() {
    let sys = small_system();
    let facade = sys.simulate_batch(8, UvMode::On).unwrap();
    let session = sys.session().simulate_batch(8, UvMode::On).unwrap();
    assert_eq!(facade, session);
}

/// A substrate that replays one fixed record for every input — makes batch
/// unit arithmetic exactly predictable.
struct ConstantBackend(sparsenn::engine::RunRecord);

impl InferenceBackend for ConstantBackend {
    fn name(&self) -> &str {
        "constant"
    }
    fn run(
        &self,
        _net: &sparsenn::model::fixedpoint::FixedNetwork,
        _input: &[sparsenn::numeric::Q6_10],
        _mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        Ok(self.0.clone())
    }
}

/// Unit-consistency regression (the Table IV pricing bug): a 2-sample
/// batch must report exactly 2× the 1-sample batch-total energy, while the
/// per-sample means — cycles, latency, energy — stay identical.
#[test]
fn batch_summary_units_are_consistent() {
    let sys = small_system();
    let template = sys.session().run_sample(0, UvMode::On).unwrap();
    assert!(template.total_cycles() > 0 && template.time_us() > 0.0);
    let session = sys.session_with(Box::new(ConstantBackend(template)));

    let one = session.simulate_batch(1, UvMode::On).unwrap();
    let two = session.simulate_batch(2, UvMode::On).unwrap();
    assert_eq!(one.layers.len(), two.layers.len());
    for (a, b) in one.layers.iter().zip(&two.layers) {
        // Batch totals double with the batch…
        assert_eq!(b.power.energy_uj, 2.0 * a.power.energy_uj);
        assert_eq!(b.power.time_us, 2.0 * a.power.time_us);
        assert_eq!(b.events.cycles, 2 * a.events.cycles);
        assert_eq!(b.events.w_reads, 2 * a.events.w_reads);
        // …while per-sample means do not move.
        assert_eq!(b.cycles, a.cycles);
        assert_eq!(b.vu_cycles, a.vu_cycles);
        assert_eq!(b.time_us, a.time_us);
        assert_eq!(b.energy_uj, a.energy_uj);
        // And the per-sample energy is exactly the batch total averaged.
        assert_eq!(b.energy_uj, b.power.energy_uj / 2.0);
        // Power is a rate: invariant to batch size.
        assert_eq!(b.power.total_mw, a.power.total_mw);
    }
    assert_eq!(two.time_us(), one.time_us());
    assert_eq!(two.energy_uj(), one.energy_uj());
}

/// Technology-node regression: a 28 nm backend's summary must be priced at
/// its own node, not the paper's hardcoded 65 nm.
#[test]
fn non_65nm_backend_is_priced_at_its_own_node() {
    use sparsenn::energy::{PowerModel, TechNode};

    let sys = small_system();
    let session = sys.session_with(Box::new(SimdBackend::new(SimdPlatform::dnn_engine())));
    let summary = session.simulate_batch(4, UvMode::On).unwrap();

    // The SIMD backend carries no machine config, so events are priced on
    // the serving machine's SRAM geometry — but at DNN-Engine's 28 nm.
    let cfg = sys.machine().config();
    let at_28 = PowerModel::at_node(cfg, TechNode::n28());
    let at_65 = PowerModel::new(cfg);
    for layer in &summary.layers {
        assert_eq!(layer.power, at_28.estimate(&layer.events));
        assert_ne!(
            layer.power,
            at_65.estimate(&layer.events),
            "28 nm events must not be billed at 65 nm"
        );
    }
}

/// A substrate that reports one layer too many — the accumulator must
/// refuse instead of silently dropping the extra layer's counters.
struct ExtraLayerBackend;

impl InferenceBackend for ExtraLayerBackend {
    fn name(&self) -> &str {
        "extra-layer"
    }
    fn run(
        &self,
        net: &sparsenn::model::fixedpoint::FixedNetwork,
        input: &[sparsenn::numeric::Q6_10],
        mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        let mut record = GoldenBackend::new().run(net, input, mode)?;
        let last = record.layers.last().expect("non-empty").clone();
        record.layers.push(last);
        Ok(record)
    }
}

#[test]
fn layer_count_mismatch_is_an_error_not_a_silent_truncation() {
    let sys = small_system();
    let expected_err = SparseNnError::LayerCountMismatch {
        expected: 2,
        got: 3,
    };
    let session = sys
        .session_with(Box::new(ExtraLayerBackend))
        .with_workers(3);
    assert_eq!(
        session.simulate_batch(6, UvMode::On).unwrap_err(),
        expected_err
    );
    assert_eq!(
        session.simulate_batch_serial(6, UvMode::On).unwrap_err(),
        expected_err
    );
}

/// A substrate with per-sample injected failures and delays (the sample is
/// identified by its quantized input). Forces out-of-order completion to
/// exercise the parallel collector's reorder/first-error logic.
struct FlakyBackend {
    inputs: Vec<Vec<sparsenn::numeric::Q6_10>>,
    fail: Vec<bool>,
    delay_us: Vec<u64>,
}

impl InferenceBackend for FlakyBackend {
    fn name(&self) -> &str {
        "flaky"
    }
    fn run(
        &self,
        net: &sparsenn::model::fixedpoint::FixedNetwork,
        input: &[sparsenn::numeric::Q6_10],
        mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        let i = self
            .inputs
            .iter()
            .position(|x| x.as_slice() == input)
            .expect("input belongs to the prepared test set");
        std::thread::sleep(std::time::Duration::from_micros(self.delay_us[i]));
        if self.fail[i] {
            return Err(SparseNnError::LayerDoesNotFit {
                layer: i,
                reason: "injected failure".into(),
            });
        }
        GoldenBackend::new().run(net, input, mode)
    }
}

fn shared_system() -> &'static TrainedSystem {
    static SYS: std::sync::OnceLock<TrainedSystem> = std::sync::OnceLock::new();
    SYS.get_or_init(small_system)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The documented `stream_batch` contract under contention: whatever
    /// order workers finish in, the returned error is the *lowest-indexed*
    /// failing sample's, and `on_sample` has fired exactly for every
    /// earlier index — no more, no fewer, in order.
    #[test]
    fn stream_batch_reports_lowest_failing_index_under_contention(
        seed in 0u64..10_000,
        workers in 2usize..6,
        fail_pct in 5u8..40,
    ) {
        use rand::Rng;
        use sparsenn::linalg::init::seeded_rng;

        let sys = shared_system();
        let n = 16usize;
        let inputs: Vec<Vec<sparsenn::numeric::Q6_10>> = (0..n)
            .map(|i| sys.fixed().quantize_input(sys.split().test.image(i)))
            .collect();
        // Index lookup by input requires distinct inputs; the synthetic
        // test images are.
        for a in 0..n {
            for b in a + 1..n {
                prop_assert!(inputs[a] != inputs[b], "samples {a} and {b} collide");
            }
        }
        let mut rng = seeded_rng(seed);
        let fail: Vec<bool> = (0..n).map(|_| rng.gen_range(0u8..100) < fail_pct).collect();
        // Early samples sleep longer, so later samples routinely complete
        // first — the reorder buffer and first-error race both engage.
        let delay_us: Vec<u64> = (0..n)
            .map(|i| rng.gen_range(0u64..200) + if i < n / 2 { 300 } else { 0 })
            .collect();
        let first_fail = fail.iter().position(|&f| f);

        let session = sys
            .session_with(Box::new(FlakyBackend {
                inputs,
                fail: fail.clone(),
                delay_us,
            }))
            .with_workers(workers);
        let mut seen = Vec::new();
        let result = session.stream_batch(n, UvMode::On, |i, _| seen.push(i));
        match first_fail {
            None => {
                prop_assert!(result.is_ok());
                prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
            }
            Some(k) => {
                prop_assert_eq!(
                    result.unwrap_err(),
                    SparseNnError::LayerDoesNotFit {
                        layer: k,
                        reason: "injected failure".into(),
                    }
                );
                prop_assert_eq!(seen, (0..k).collect::<Vec<_>>());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cycle-accurate backend stays bit-exact with the golden
    /// fixed-point backend *through the trait*, for random networks,
    /// inputs and both UV modes — the contract that makes substrates
    /// interchangeable.
    #[test]
    fn cycle_accurate_equals_golden_through_the_trait(
        seed in 0u64..10_000,
        hidden in 8usize..80,
        rank in 1usize..5,
        sparsity in 0u8..100,
        uv_on in any::<bool>(),
    ) {
        use sparsenn::linalg::init::seeded_rng;
        use sparsenn::model::fixedpoint::FixedNetwork;
        use sparsenn::model::{Mlp, PredictedNetwork};
        use rand::Rng;

        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(&[24, hidden, 10], &mut rng);
        let net = FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(
            mlp, rank, &mut rng,
        ));
        let x: Vec<f32> = (0..24)
            .map(|_| {
                if rng.gen_range(0u8..100) < sparsity {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        let xq = net.quantize_input(&x);
        let mode = if uv_on { UvMode::On } else { UvMode::Off };

        let cycle: Box<dyn InferenceBackend> = Box::new(CycleAccurateBackend::default());
        let golden: Box<dyn InferenceBackend> = Box::new(GoldenBackend::new());
        let a = cycle.run(&net, &xq, mode).unwrap();
        let b = golden.run(&net, &xq, mode).unwrap();
        prop_assert_eq!(a.layers.len(), b.layers.len());
        for (l, (ca, gb)) in a.layers.iter().zip(&b.layers).enumerate() {
            prop_assert_eq!(&ca.output, &gb.output, "layer {} output differs", l);
            prop_assert_eq!(&ca.mask, &gb.mask, "layer {} mask differs", l);
        }
    }
}
