//! The engine contract: every substrate behind [`InferenceBackend`] is
//! interchangeable, batches parallelize without changing results, and no
//! input reaches a panic through the public inference API.

use proptest::prelude::*;
use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{CycleAccurateBackend, GoldenBackend, InferenceBackend, SimdBackend};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::sim::simd::SimdPlatform;
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

#[test]
fn out_of_range_sample_returns_err_on_every_backend() {
    let sys = small_system();
    let backends: Vec<Box<dyn InferenceBackend>> = vec![
        Box::new(CycleAccurateBackend::default()),
        Box::new(GoldenBackend::new()),
        Box::new(SimdBackend::new(SimdPlatform::dnn_engine())),
    ];
    for backend in backends {
        let session = sys.session_with(backend);
        let name = session.backend_name().to_string();
        assert_eq!(
            session.run_sample(40, UvMode::On).unwrap_err(),
            SparseNnError::SampleOutOfRange { index: 40, len: 40 },
            "{name}"
        );
        assert!(session.run_sample(39, UvMode::On).is_ok(), "{name}");
    }
    // And through the TrainedSystem facade.
    assert!(matches!(
        sys.simulate_sample(usize::MAX, UvMode::On),
        Err(SparseNnError::SampleOutOfRange { .. })
    ));
}

#[test]
fn wrong_width_input_returns_err_not_panic() {
    let sys = small_system();
    let session = sys.session();
    assert_eq!(
        session.run_input(&[0.5; 10], UvMode::On).unwrap_err(),
        SparseNnError::InputWidthMismatch {
            expected: 784,
            got: 10
        }
    );
}

#[test]
fn empty_batch_yields_well_defined_summary() {
    let sys = small_system();
    for backend in [
        Box::new(GoldenBackend::new()) as Box<dyn InferenceBackend>,
        Box::new(CycleAccurateBackend::default()),
    ] {
        let summary = sys
            .session_with(backend)
            .simulate_batch(0, UvMode::On)
            .unwrap();
        assert_eq!(summary.samples, 0);
        assert_eq!(summary.fixed_accuracy, 0.0);
        assert_eq!(
            summary.layers.len(),
            2,
            "one entry per layer even when empty"
        );
        for layer in &summary.layers {
            assert_eq!(layer.cycles, 0.0);
            assert_eq!(layer.events.macs, 0);
        }
    }
}

#[test]
fn parallel_batch_matches_serial_batch_exactly() {
    let sys = small_system();
    // Pin 4 workers so the multi-threaded path runs even on a 1-core host.
    let session = sys.session().with_workers(4);
    for mode in [UvMode::Off, UvMode::On] {
        let serial = session.simulate_batch_serial(24, mode).unwrap();
        let parallel = session.simulate_batch(24, mode).unwrap();
        assert_eq!(
            serial, parallel,
            "{mode:?}: parallel summary must be bit-identical"
        );
    }
    // Oversized requests clamp identically too.
    let serial = session.simulate_batch_serial(10_000, UvMode::On).unwrap();
    let parallel = session.simulate_batch(10_000, UvMode::On).unwrap();
    assert_eq!(serial.samples, 40);
    assert_eq!(serial, parallel);
}

#[test]
fn streaming_delivers_every_sample_in_order() {
    let sys = small_system();
    let session = sys.session().with_workers(3);
    let mut seen = Vec::new();
    let summary = session
        .stream_batch(12, UvMode::On, |i, record| {
            assert!(!record.layers.is_empty());
            seen.push(i);
        })
        .unwrap();
    assert_eq!(seen, (0..12).collect::<Vec<_>>());
    assert_eq!(summary.samples, 12);
}

/// A substrate that refuses every request — exercises the parallel
/// collector's early-exit path.
struct AlwaysFailingBackend;

impl InferenceBackend for AlwaysFailingBackend {
    fn name(&self) -> &str {
        "always-failing"
    }
    fn run(
        &self,
        _net: &sparsenn::model::fixedpoint::FixedNetwork,
        _input: &[sparsenn::numeric::Q6_10],
        _mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        Err(SparseNnError::EmptyNetwork)
    }
}

#[test]
fn failing_backend_surfaces_first_error_without_hanging() {
    let sys = small_system();
    let session = sys
        .session_with(Box::new(AlwaysFailingBackend))
        .with_workers(4);
    // Workers race ahead; the collector must return the lowest-indexed
    // failure and wind the pool down cleanly.
    assert_eq!(
        session.simulate_batch(16, UvMode::On).unwrap_err(),
        SparseNnError::EmptyNetwork
    );
    // The serial oracle agrees.
    assert_eq!(
        session.simulate_batch_serial(16, UvMode::On).unwrap_err(),
        SparseNnError::EmptyNetwork
    );
}

/// A substrate that panics — the engine must contain the unwind instead of
/// deadlocking the pool or re-raising through `thread::scope`.
struct PanickingBackend;

impl InferenceBackend for PanickingBackend {
    fn name(&self) -> &str {
        "panicking"
    }
    fn run(
        &self,
        _net: &sparsenn::model::fixedpoint::FixedNetwork,
        _input: &[sparsenn::numeric::Q6_10],
        _mode: UvMode,
    ) -> Result<sparsenn::engine::RunRecord, SparseNnError> {
        panic!("backend blew up");
    }
}

#[test]
fn panicking_backend_becomes_worker_panicked_error() {
    let sys = small_system();
    let session = sys.session_with(Box::new(PanickingBackend)).with_workers(4);
    // Batch larger than the permit window: without panic containment this
    // deadlocks (the unwinding worker keeps its permit forever).
    assert_eq!(
        session.simulate_batch(40, UvMode::On).unwrap_err(),
        SparseNnError::WorkerPanicked
    );
}

#[test]
fn batch_through_the_facade_matches_the_session() {
    let sys = small_system();
    let facade = sys.simulate_batch(8, UvMode::On).unwrap();
    let session = sys.session().simulate_batch(8, UvMode::On).unwrap();
    assert_eq!(facade, session);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cycle-accurate backend stays bit-exact with the golden
    /// fixed-point backend *through the trait*, for random networks,
    /// inputs and both UV modes — the contract that makes substrates
    /// interchangeable.
    #[test]
    fn cycle_accurate_equals_golden_through_the_trait(
        seed in 0u64..10_000,
        hidden in 8usize..80,
        rank in 1usize..5,
        sparsity in 0u8..100,
        uv_on in any::<bool>(),
    ) {
        use sparsenn::linalg::init::seeded_rng;
        use sparsenn::model::fixedpoint::FixedNetwork;
        use sparsenn::model::{Mlp, PredictedNetwork};
        use rand::Rng;

        let mut rng = seeded_rng(seed);
        let mlp = Mlp::random(&[24, hidden, 10], &mut rng);
        let net = FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(
            mlp, rank, &mut rng,
        ));
        let x: Vec<f32> = (0..24)
            .map(|_| {
                if rng.gen_range(0u8..100) < sparsity {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect();
        let xq = net.quantize_input(&x);
        let mode = if uv_on { UvMode::On } else { UvMode::Off };

        let cycle: Box<dyn InferenceBackend> = Box::new(CycleAccurateBackend::default());
        let golden: Box<dyn InferenceBackend> = Box::new(GoldenBackend::new());
        let a = cycle.run(&net, &xq, mode).unwrap();
        let b = golden.run(&net, &xq, mode).unwrap();
        prop_assert_eq!(a.layers.len(), b.layers.len());
        for (l, (ca, gb)) in a.layers.iter().zip(&b.layers).enumerate() {
            prop_assert_eq!(&ca.output, &gb.output, "layer {} output differs", l);
            prop_assert_eq!(&ca.mask, &gb.mask, "layer {} mask differs", l);
        }
    }
}
