//! Acceptance tests for the native CPU kernel backend: through the public
//! facade, the prescan + block-skip kernel is interchangeable with every
//! other substrate — bit-exact outputs, bit-identical batches, and a
//! measured service table the serving plane can consume.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{GoldenBackend, InferenceBackend, KernelBackend};
use sparsenn::kernel::{SparseKernel, Strategy, DEFAULT_BLOCK};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::{SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

fn shared_system() -> &'static TrainedSystem {
    static SYS: std::sync::OnceLock<TrainedSystem> = std::sync::OnceLock::new();
    SYS.get_or_init(small_system)
}

/// The kernel backend's outputs and masks equal the golden backend's on
/// real trained weights and real test images, in both UV modes.
#[test]
fn kernel_backend_equals_golden_on_trained_system() {
    let sys = shared_system();
    let kernel: Box<dyn InferenceBackend> = Box::new(KernelBackend::new());
    let golden: Box<dyn InferenceBackend> = Box::new(GoldenBackend::new());
    for mode in [UvMode::Off, UvMode::On] {
        for i in 0..8 {
            let x = sys.fixed().quantize_input(sys.split().test.image(i));
            let a = kernel.run(sys.fixed(), &x, mode).unwrap();
            let b = golden.run(sys.fixed(), &x, mode).unwrap();
            assert_eq!(a.layers.len(), b.layers.len());
            for (l, (ka, gb)) in a.layers.iter().zip(&b.layers).enumerate() {
                assert_eq!(ka.output, gb.output, "{mode:?} sample {i} layer {l}");
                assert_eq!(ka.mask, gb.mask, "{mode:?} sample {i} layer {l} mask");
            }
        }
    }
}

/// `TrainedSystem::kernel_session` classifies exactly like the golden
/// session — the kernel slots into the session/fleet plane unchanged.
#[test]
fn kernel_session_classifies_like_golden_session() {
    let sys = shared_system();
    let ks = sys.kernel_session();
    let gs = sys.session_with(Box::new(GoldenBackend::new()));
    assert!(ks.backend_name().starts_with("kernel-cpu-b"));
    for i in 0..12 {
        let a = ks.run_sample(i, UvMode::On).unwrap();
        let b = gs.run_sample(i, UvMode::On).unwrap();
        assert_eq!(
            a.layers.last().unwrap().output,
            b.layers.last().unwrap().output,
            "sample {i}"
        );
    }
    // And the whole-batch accuracy agrees.
    let ka = ks.simulate_batch(40, UvMode::On).unwrap();
    let ga = gs.simulate_batch(40, UvMode::On).unwrap();
    assert_eq!(ka.fixed_accuracy, ga.fixed_accuracy);
}

/// The native batched path is bit-identical to serial runs for every
/// batch size 1..=4, in both UV modes — through the backend trait.
#[test]
fn kernel_run_batch_is_bit_identical_to_serial() {
    let sys = shared_system();
    let kb = KernelBackend::new();
    for mode in [UvMode::Off, UvMode::On] {
        for b in 1..=4usize {
            let inputs: Vec<Vec<sparsenn::numeric::Q6_10>> = (0..b)
                .map(|i| sys.fixed().quantize_input(sys.split().test.image(i)))
                .collect();
            let batch = kb.run_batch(sys.fixed(), &inputs, mode).unwrap();
            assert_eq!(batch.records.len(), b, "{mode:?} B={b}");
            for (i, x) in inputs.iter().enumerate() {
                let serial = kb.run(sys.fixed(), x, mode).unwrap();
                assert_eq!(batch.records[i], serial, "{mode:?} B={b} sample {i}");
            }
        }
    }
}

/// Dense and prescan strategies agree bit for bit on the raw kernel (the
/// speedup claim in the bench plane compares like with like).
#[test]
fn dense_and_prescan_strategies_agree_on_trained_weights() {
    let sys = shared_system();
    let kernel = SparseKernel::pack(sys.fixed(), DEFAULT_BLOCK);
    let mut s = kernel.scratch();
    for mode in [UvMode::Off, UvMode::On] {
        for i in 0..6 {
            let x = sys.fixed().quantize_input(sys.split().test.image(i));
            let a = kernel.run(&x, mode, Strategy::Prescan, &mut s);
            let b = kernel.run(&x, mode, Strategy::Dense, &mut s);
            assert_eq!(a.output(), b.output(), "{mode:?} sample {i}");
            assert_eq!(a.classify(), b.classify(), "{mode:?} sample {i}");
            // Prescan never touches more W words per active row than a
            // whole padded dense row.
            for (l, (pa, da)) in a.layers.iter().zip(&b.layers).enumerate() {
                let padded = (pa.stats.cols as usize).div_ceil(DEFAULT_BLOCK) * DEFAULT_BLOCK;
                assert!(
                    pa.stats.w_words <= pa.stats.active_rows * padded as u64,
                    "layer {l}: prescan read past the padded row"
                );
                assert_eq!(pa.stats.rows, da.stats.rows);
            }
        }
    }
}

/// `ShardSpec::from_measured` against the kernel backend yields a table
/// the virtual-time serving simulator can drive.
#[test]
fn measured_shard_spec_feeds_the_serving_simulator() {
    use sparsenn::serve::{simulate, FirstIdle, ShardSpec, Workload};

    let sys = shared_system();
    let inputs: Vec<Vec<sparsenn::numeric::Q6_10>> = (0..4)
        .map(|i| sys.fixed().quantize_input(sys.split().test.image(i)))
        .collect();
    let spec = ShardSpec::from_measured(
        "kernel-measured",
        &KernelBackend::new(),
        sys.fixed(),
        &inputs,
        UvMode::On,
        2,
    )
    .unwrap();
    assert_eq!(spec.service_us.len(), 4);
    assert!(spec.service_us.iter().all(|&t| t.is_finite() && t > 0.0));
    let workload = Workload::ClosedLoop {
        concurrency: 2,
        requests: 16,
        think_us: 0.0,
    };
    let s = simulate(std::slice::from_ref(&spec), &FirstIdle, &workload).unwrap();
    assert_eq!(s.requests, 16);
    assert!(
        s.latency.mean_us > 0.0,
        "measured service times drive latency"
    );
}
