//! Wavefront-pipelining acceptance tests — the contract of ISSUE 5:
//!
//! 1. on a multi-chip oversized MLP (up to the bench's 8-chip point),
//!    the `Wavefront` schedule's per-sample `time_us` is **strictly
//!    below** `Serialized` while outputs, masks and total energy/events
//!    stay **bit-identical** — pipelining reorders time, never
//!    arithmetic;
//! 2. wavefront latency never beats the `InterChipConfig::free()`
//!    no-comm lower bound;
//! 3. the pipelined backend composes unchanged with the `Session` front
//!    end (`TrainedSystem::partitioned_session_pipelined`), and the
//!    activity-balanced planner serves the same bits.
//!
//! The CI `partition-smoke` step runs this file in release mode.

use sparsenn::engine::{InferenceBackend, PartitionedMachine};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::partition::{InterChipConfig, PipelineMode};
use sparsenn::sim::MachineConfig;
use sparsenn::{SystemBuilder, TrainedSystem, TrainingAlgorithm};

/// The bench's oversized-MLP shape: a first layer that overflows its
/// own (shrunken) chip, so ≥2 chips genuinely split it. 256 rows over
/// 64 PEs needs 4 rows/PE × 784 cols = 3136 words against 1600.
fn oversized_system() -> TrainedSystem {
    let chip = MachineConfig {
        w_mem_bytes: 2 * 1600,
        ..MachineConfig::default()
    };
    SystemBuilder::new(sparsenn::datasets::DatasetKind::Basic)
        .dims(&[784, 256, 10])
        .rank(6)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(30)
        .epochs(1)
        .machine(chip)
        .build()
}

/// Acceptance: on the 8-chip oversized configuration (and the smaller
/// sweep points) wavefront is strictly faster than serialized, with
/// bit-identical outputs, masks and event totals, and the free-link
/// lower bound ordering `free ≤ wavefront < serialized` holds.
#[test]
fn wavefront_overlaps_comm_with_compute_on_the_bench_config() {
    let sys = oversized_system();
    let chip = *sys.machine().config();
    for chips in [2usize, 4, 8] {
        let serialized =
            PartitionedMachine::new(sys.fixed(), chip, chips, InterChipConfig::default()).unwrap();
        let wavefront = PartitionedMachine::with_pipeline(
            sys.fixed(),
            chip,
            chips,
            InterChipConfig::default(),
            PipelineMode::Wavefront,
        )
        .unwrap();
        let free = PartitionedMachine::with_pipeline(
            sys.fixed(),
            chip,
            chips,
            InterChipConfig::free(),
            PipelineMode::Wavefront,
        )
        .unwrap();
        for i in 0..4 {
            let x = sys.fixed().quantize_input(sys.split().test.image(i));
            let s = serialized.run(sys.fixed(), &x, UvMode::On).unwrap();
            let w = wavefront.run(sys.fixed(), &x, UvMode::On).unwrap();
            let f = free.run(sys.fixed(), &x, UvMode::On).unwrap();
            for (l, (sl, wl)) in s.layers.iter().zip(&w.layers).enumerate() {
                assert_eq!(sl.output, wl.output, "{chips} chips sample {i} layer {l}");
                assert_eq!(sl.mask, wl.mask, "{chips} chips sample {i} layer {l} mask");
                assert_eq!(
                    sl.events, wl.events,
                    "{chips} chips sample {i} layer {l}: energy/event sums must be identical"
                );
            }
            assert_eq!(s.output(), f.output(), "free links never change bits");
            assert!(
                w.time_us() < s.time_us(),
                "{chips} chips sample {i}: wavefront {} must be strictly below serialized {}",
                w.time_us(),
                s.time_us()
            );
            assert!(
                w.time_us() >= f.time_us() - 1e-9,
                "{chips} chips sample {i}: wavefront {} cannot beat the no-comm bound {}",
                w.time_us(),
                f.time_us()
            );
        }
    }
}

/// The session front door: `partitioned_session_pipelined` serves the
/// same bits as the serialized session (parallel fold == serial fold),
/// with per-sample latency never above it.
#[test]
fn pipelined_session_composes_with_the_serving_stack() {
    let sys = oversized_system();
    let serial = sys
        .partitioned_session_pipelined(4)
        .unwrap()
        .simulate_batch_serial(10, UvMode::On)
        .unwrap();
    let parallel = sys
        .partitioned_session_pipelined(4)
        .unwrap()
        .simulate_batch(10, UvMode::On)
        .unwrap();
    assert_eq!(
        serial, parallel,
        "parallel fold must match the serial oracle"
    );

    let unpipelined = sys
        .partitioned_session(4)
        .unwrap()
        .simulate_batch(10, UvMode::On)
        .unwrap();
    assert_eq!(serial.fixed_accuracy, unpipelined.fixed_accuracy);
    assert_eq!(serial.samples, unpipelined.samples);
    for (l, (p, s)) in serial.layers.iter().zip(&unpipelined.layers).enumerate() {
        assert_eq!(p.events, s.events, "layer {l}: event totals identical");
        assert!(
            p.time_us <= s.time_us + 1e-9,
            "layer {l}: pipelined {} vs serialized {}",
            p.time_us,
            s.time_us
        );
    }
    assert!(
        serial.time_us() < unpipelined.time_us(),
        "end-to-end: pipelining must hide some comm latency"
    );
}

/// Activity-balanced tiling (the ROADMAP follow-up): the plan from a
/// calibration batch validates, and under uv_on its expected per-chip
/// activity spread is no worse than the static plan's.
#[test]
fn activity_balanced_plan_serves_identical_bits() {
    let sys = oversized_system();
    let chip = *sys.machine().config();
    let balanced = sys.partition_plan_balanced(4, 16).expect("plannable");
    balanced.validate(&chip).expect("valid");

    let activity = sys.row_activity(16);
    let spread = |plan: &sparsenn::partition::PartitionPlan| -> f64 {
        let tiles = &plan.layers()[0].tiles;
        let loads: Vec<f64> = tiles
            .iter()
            .map(|t| t.iter().map(|&r| activity[0][r]).sum())
            .collect();
        loads.iter().cloned().fold(0.0f64, f64::max)
            - loads.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let uniform = sys.partition_plan(4).unwrap();
    assert!(
        spread(&balanced) <= spread(&uniform) + 1e-9,
        "activity balancing must not widen the expected-load spread: {} vs {}",
        spread(&balanced),
        spread(&uniform)
    );

    // Same bits through the wavefront executor.
    let pm = PartitionedMachine::from_plan_pipelined(
        sys.fixed(),
        chip,
        balanced,
        InterChipConfig::default(),
        PipelineMode::Wavefront,
    )
    .unwrap();
    let x = sys.fixed().quantize_input(sys.split().test.image(0));
    let a = pm.run(sys.fixed(), &x, UvMode::On).unwrap();
    let b = sys
        .partitioned_session(4)
        .unwrap()
        .run_sample(0, UvMode::On)
        .unwrap();
    assert_eq!(a.output(), b.output());
    assert_eq!(a.layers.last().unwrap().mask, b.layers.last().unwrap().mask);
}
