//! Checkpoint robustness: every way a `TrainedSystem` checkpoint file
//! can be damaged — truncation, corrupted magic, a version from another
//! build — produces a *distinct* `SparseNnError::Checkpoint` message
//! (never a panic), and a saved `PartitionPlan` reloads bit-identically
//! next to its checkpoint.

use sparsenn::datasets::DatasetKind;
use sparsenn::partition::PartitionPlan;
use sparsenn::{SparseNnError, SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn tiny_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 24, 10])
        .rank(4)
        .algorithm(TrainingAlgorithm::Svd)
        .train_samples(60)
        .test_samples(20)
        .epochs(1)
        .build()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sparsenn-checkpoint-{tag}-{}.txt",
        std::process::id()
    ))
}

fn checkpoint_message(result: Result<TrainedSystem, SparseNnError>) -> String {
    match result {
        Err(SparseNnError::Checkpoint { message }) => message,
        Err(other) => panic!("expected Checkpoint error, got {other:?}"),
        Ok(_) => panic!("damaged checkpoint parsed successfully"),
    }
}

/// Truncated file, corrupted magic and a mismatched version each fail
/// with their own diagnostic — a user can tell *which* damage happened
/// from the message alone.
#[test]
fn damaged_checkpoints_fail_distinctly_without_panicking() {
    let sys = tiny_system();
    let good = sys.to_checkpoint_string();

    // 1. Truncated: keep only the first lines, losing the model section.
    let truncated: String = good.lines().take(4).collect::<Vec<_>>().join("\n");
    let truncated_msg = checkpoint_message(TrainedSystem::from_checkpoint_str(&truncated));

    // 2. Corrupted header magic: not a sparsenn checkpoint at all.
    let corrupted = good.replacen("sparsenn-system v1", "sparsexx-system v1", 1);
    let corrupted_msg = checkpoint_message(TrainedSystem::from_checkpoint_str(&corrupted));
    assert!(
        corrupted_msg.contains("magic"),
        "magic damage should be named: {corrupted_msg}"
    );

    // 3. Right file format, wrong version.
    let versioned = good.replacen("sparsenn-system v1", "sparsenn-system v7", 1);
    let versioned_msg = checkpoint_message(TrainedSystem::from_checkpoint_str(&versioned));
    assert!(
        versioned_msg.contains("version") && versioned_msg.contains("v7"),
        "version mismatch should name the version: {versioned_msg}"
    );

    // All three diagnostics are pairwise distinct.
    assert_ne!(truncated_msg, corrupted_msg);
    assert_ne!(truncated_msg, versioned_msg);
    assert_ne!(corrupted_msg, versioned_msg);

    // And the undamaged text still parses.
    assert!(TrainedSystem::from_checkpoint_str(&good).is_ok());
}

/// The same three damages through the file-based `load` path: still
/// typed `Checkpoint` errors, still no panics.
#[test]
fn damaged_checkpoint_files_load_as_errors() {
    let sys = tiny_system();
    let good = sys.to_checkpoint_string();
    for (tag, text) in [
        (
            "truncated",
            good.lines().take(3).collect::<Vec<_>>().join("\n"),
        ),
        ("magic", good.replacen("sparsenn-system", "not-a-system", 1)),
        (
            "version",
            good.replacen("sparsenn-system v1", "sparsenn-system v2", 1),
        ),
    ] {
        let path = temp_path(tag);
        std::fs::write(&path, &text).unwrap();
        let result = TrainedSystem::load(&path);
        let _ = std::fs::remove_file(&path);
        assert!(
            matches!(result, Err(SparseNnError::Checkpoint { .. })),
            "{tag}: expected Checkpoint error"
        );
    }
    // A missing file is a Checkpoint error too.
    assert!(matches!(
        TrainedSystem::load(temp_path("missing")),
        Err(SparseNnError::Checkpoint { .. })
    ));
}

/// A saved `PartitionPlan` reloads bit-identically alongside its
/// checkpoint — the pair (checkpoint, plan) reproduces the deployment.
#[test]
fn partition_plan_roundtrips_alongside_the_checkpoint() {
    let sys = tiny_system();
    let plan = sys.partition_plan(4).expect("plannable");

    let ckpt_path = temp_path("system");
    let plan_path = temp_path("plan");
    sys.save(&ckpt_path).unwrap();
    plan.save(&plan_path).unwrap();

    let sys_back = TrainedSystem::load(&ckpt_path).unwrap();
    let plan_back = PartitionPlan::load(&plan_path).unwrap();
    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(&plan_path);

    assert_eq!(plan, plan_back, "plan text round-trips bit-identically");
    assert!(plan_back.matches(sys_back.fixed()));
    plan_back.validate(sys_back.machine().config()).unwrap();
    // The reloaded pair re-plans to the identical partition (same
    // quantized weights → same nnz balance → same greedy assignment).
    assert_eq!(sys_back.partition_plan(4).unwrap(), plan_back);
}
