//! Cross-crate integration: the full pipeline from synthetic data to
//! simulated silicon.

use sparsenn::datasets::DatasetKind;
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::{SystemBuilder, TrainingAlgorithm};

fn small_system(alg: TrainingAlgorithm) -> sparsenn::TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 64, 10])
        .rank(6)
        .algorithm(alg)
        .train_samples(150)
        .test_samples(50)
        .epochs(3)
        .build()
}

#[test]
fn trained_system_beats_chance_and_simulates_exactly() {
    let sys = small_system(TrainingAlgorithm::EndToEnd);
    let ter = sys.test_error_rate();
    assert!(ter < 60.0, "TER {ter}% is at chance level");

    // The cycle-level machine must agree with the golden model bit for bit
    // on real trained weights, both modes, several samples.
    for i in 0..5 {
        let x = sys.fixed().quantize_input(sys.split().test.image(i));
        for mode in [UvMode::Off, UvMode::On] {
            let run = sys.machine().run_network(sys.fixed(), &x, mode);
            let golden = sys.fixed().forward(&x, mode);
            for (l, (r, g)) in run.layers.iter().zip(&golden).enumerate() {
                assert_eq!(r.output, g.output, "sample {i} layer {l} {mode:?}");
                assert_eq!(r.mask, g.mask, "sample {i} layer {l} mask {mode:?}");
            }
        }
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let a = small_system(TrainingAlgorithm::EndToEnd);
    let b = small_system(TrainingAlgorithm::EndToEnd);
    assert_eq!(
        a.network(),
        b.network(),
        "training must be bit-reproducible"
    );
    let run_a = a.simulate_sample(0, UvMode::On).unwrap();
    let run_b = b.simulate_sample(0, UvMode::On).unwrap();
    assert_eq!(run_a.total_cycles(), run_b.total_cycles());
    assert_eq!(run_a.total_events(), run_b.total_events());
}

#[test]
fn all_three_algorithms_flow_through_the_whole_stack() {
    for alg in [
        TrainingAlgorithm::EndToEnd,
        TrainingAlgorithm::Svd,
        TrainingAlgorithm::NoUv,
    ] {
        let sys = small_system(alg);
        let run = sys.simulate_sample(0, UvMode::On).unwrap();
        assert_eq!(run.layers.len(), 2, "{alg}: two weight layers");
        assert!(run.total_cycles() > 0, "{alg}");
        let batch = sys.simulate_batch(2, UvMode::On).unwrap();
        assert!(batch.layers[0].power.total_mw > 0.0, "{alg}");
    }
}

#[test]
fn quantized_accuracy_tracks_float_accuracy() {
    let sys = small_system(TrainingAlgorithm::EndToEnd);
    let n = 30usize;
    let mut float_correct = 0usize;
    let mut fixed_correct = 0usize;
    for i in 0..n {
        let img = sys.split().test.image(i);
        let label = sys.split().test.label(i) as usize;
        let float_pred =
            sparsenn::linalg::vector::argmax(sys.network().forward_predicted(img).logits())
                .unwrap();
        let xq = sys.fixed().quantize_input(img);
        let fixed_pred = sys.fixed().classify(&xq, UvMode::On);
        float_correct += usize::from(float_pred == label);
        fixed_correct += usize::from(fixed_pred == label);
    }
    let diff = (float_correct as i64 - fixed_correct as i64).unsigned_abs() as usize;
    assert!(
        diff <= n / 5,
        "Q6.10 quantization changed accuracy too much: float {float_correct}/{n}, fixed {fixed_correct}/{n}"
    );
}

#[test]
fn predictor_gating_reduces_work_on_every_hidden_layer() {
    let sys = small_system(TrainingAlgorithm::EndToEnd);
    let off = sys.simulate_batch(3, UvMode::Off).unwrap();
    let on = sys.simulate_batch(3, UvMode::On).unwrap();
    // Hidden layer: fewer W reads with the predictor on; some U/V reads paid.
    assert!(on.layers[0].events.w_reads < off.layers[0].events.w_reads);
    assert!(on.layers[0].events.u_reads > 0);
    assert_eq!(off.layers[0].events.u_reads, 0);
    // Classifier layer carries no predictor in either mode.
    assert_eq!(on.layers[1].vu_cycles, 0.0);
}
