//! Acceptance tests for the trace-analytics layer, end to end through
//! the facade and the bench scenario: critical-path attribution sums
//! exactly, the live tail-exemplar reservoir matches the offline
//! oracle, the burn-rate monitor discriminates overload from nominal
//! load, and the `trace_report` rendering is byte-deterministic —
//! including through a Chrome-trace export/parse round trip.

use sparsenn::obs::{analyze, chrome_trace, offline_top_k, AlertKind, Phase};
use sparsenn_bench::experiments::analyze::{capture, render_report};
use sparsenn_bench::report::parse_chrome_trace;

#[test]
fn breakdown_attributes_every_request_exactly() {
    let (summary, spans, _) = capture(true);
    let analysis = analyze(&spans);
    assert_eq!(
        analysis.requests.len(),
        summary.requests,
        "every offered request has a request span and a breakdown"
    );
    for r in &analysis.requests {
        assert!(
            (r.phases_sum_us() - r.total_us).abs() <= 1e-6 * r.total_us.max(1.0),
            "request {}: phases {:?} do not sum to {}",
            r.trace_id,
            r.phase_us,
            r.total_us
        );
        let path = r.critical_path_us();
        assert!(
            path <= r.total_us + 1e-9,
            "request {}: path {} exceeds span {}",
            r.trace_id,
            path,
            r.total_us
        );
        assert!(
            path + 1e-9 >= r.max_phase_us(),
            "request {}: path {} below its longest phase {}",
            r.trace_id,
            path,
            r.max_phase_us()
        );
        // Path steps are in time order and inside the request span.
        for w in r.path.windows(2) {
            assert!(w[0].end_us <= w[1].start_us + 1e-9);
        }
    }
    // The overload scenario is queue-dominated — the attribution should
    // say so.
    assert!(
        analysis.overall.percent(Phase::Queue) > 30.0,
        "overload must show up as queueing: {:?}",
        analysis.overall
    );
}

#[test]
fn live_exemplars_equal_the_offline_top_k() {
    let (_, spans, live) = capture(true);
    let offline = offline_top_k(&spans, live.len());
    assert_eq!(live, offline, "reservoir diverged from sort-and-take-K");
    // Kept set is sorted slowest-first with full span sets attached.
    for w in live.windows(2) {
        assert!(w[0].latency_us >= w[1].latency_us);
    }
    for e in &live {
        assert!(!e.spans.is_empty());
    }
}

#[test]
fn burn_monitor_discriminates_overload_from_nominal() {
    let (overload, _, _) = capture(true);
    let fires = overload
        .burn_alerts
        .iter()
        .filter(|a| a.alert.kind == AlertKind::Fire)
        .count();
    assert!(
        fires >= 1,
        "injected overload must raise at least one alert: {:?}",
        overload.burn_alerts
    );
    let (nominal, _, _) = capture(false);
    assert!(
        nominal.burn_alerts.is_empty(),
        "nominal load must stay quiet: {:?}",
        nominal.burn_alerts
    );
}

#[test]
fn report_is_byte_identical_across_captures() {
    let (s1, spans1, live1) = capture(true);
    let (s2, spans2, live2) = capture(true);
    let r1 = render_report(&analyze(&spans1), &live1, &s1.burn_alerts, 8);
    let r2 = render_report(&analyze(&spans2), &live2, &s2.burn_alerts, 8);
    assert_eq!(r1, r2);
    for needle in [
        "latency breakdown",
        "per class",
        "path signatures",
        "tail exemplars",
        "burn-rate alerts",
        "fire",
    ] {
        assert!(r1.contains(needle), "report missing {needle:?}");
    }
}

#[test]
fn chrome_trace_export_reanalyzes_identically() {
    let (_, spans, _) = capture(true);
    let parsed = parse_chrome_trace(&chrome_trace(&spans)).expect("own export parses");
    assert_eq!(parsed.len(), spans.len());
    let a = analyze(&spans);
    let b = analyze(&parsed);
    // Span order differs (async begins re-emerge at their 'b' events)
    // and timestamps are quantized to the export's three decimals, but
    // per-request attribution must survive within that quantization.
    assert_eq!(a.requests.len(), b.requests.len());
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(x.trace_id, y.trace_id);
        assert_eq!(x.class, y.class);
        assert_eq!(x.shard, y.shard);
        assert!((x.total_us - y.total_us).abs() < 1e-2);
        for (p, q) in x.phase_us.iter().zip(y.phase_us) {
            assert!((p - q).abs() < 1e-2);
        }
    }
}
