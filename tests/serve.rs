//! Acceptance tests for the virtual-time serving simulator: the simulator
//! and the live `engine::Fleet` share one `Scheduler` trait; a homogeneous
//! fleet under closed-loop load at fleet concurrency shows no queueing
//! (simulated mean latency == the backend's modelled per-sample time_us);
//! and fastest-expected-completion beats first-idle on p95 latency over a
//! heterogeneous machine + SIMD fleet.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{
    CycleAccurateBackend, FastestCompletion, FirstIdle, Fleet, InferenceBackend, Scheduler,
    SimdBackend,
};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::serve::{fleet_capacity_rps, simulate, ShardSpec, Workload};
use sparsenn::sim::simd::SimdPlatform;
use sparsenn::{SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

/// The backend's modelled per-sample service times on the first `n` test
/// samples — the simulator's input.
fn service_table(sys: &TrainedSystem, backend: Box<dyn InferenceBackend>, n: usize) -> Vec<f64> {
    let mut table = Vec::new();
    sys.session_with(backend)
        .stream_batch(n, UvMode::On, |_, record| table.push(record.time_us()))
        .expect("network fits the backend");
    table
}

/// Acceptance: closed-loop, concurrency == shards, homogeneous machine
/// fleet → zero queueing, and the simulated mean latency equals the
/// backend's modelled per-sample `time_us` mean exactly.
#[test]
fn closed_loop_mean_latency_matches_the_backend_clock_model() {
    let sys = small_system();
    let table = service_table(
        &sys,
        Box::new(CycleAccurateBackend::new(sys.machine().clone())),
        16,
    );
    let modelled_mean = table.iter().sum::<f64>() / table.len() as f64;
    assert!(modelled_mean > 0.0);
    let shards: Vec<ShardSpec> = (0..4)
        .map(|i| ShardSpec::with_table(format!("machine-{i}"), table.clone()))
        .collect();
    let summary = simulate(
        &shards,
        &FirstIdle,
        &Workload::ClosedLoop {
            concurrency: 4,
            // A multiple of the table length so the request mix covers the
            // sample mix exactly.
            requests: table.len() * 12,
            think_us: 0.0,
        },
    )
    .unwrap();
    assert_eq!(summary.queue_us_mean, 0.0, "no request ever waits");
    assert!(
        (summary.latency.mean_us - modelled_mean).abs() < 1e-9 * modelled_mean,
        "simulated mean {} vs modelled per-sample time {}",
        summary.latency.mean_us,
        modelled_mean
    );
}

/// Acceptance: on a heterogeneous fleet (cycle-accurate machine beside
/// the slower Table IV SIMD platforms), latency-aware dispatch beats
/// first-idle on p95.
#[test]
fn fastest_completion_beats_first_idle_on_heterogeneous_p95() {
    let sys = small_system();
    let machine = service_table(
        &sys,
        Box::new(CycleAccurateBackend::new(sys.machine().clone())),
        16,
    );
    let lradnn = service_table(
        &sys,
        Box::new(SimdBackend::new(SimdPlatform::lradnn(5))),
        16,
    );
    let shards = vec![
        ShardSpec::with_table("machine", machine),
        ShardSpec::with_table("LRADNN", lradnn),
    ];
    let workload = Workload::Poisson {
        rate_rps: fleet_capacity_rps(&shards) * 0.75,
        requests: 3000,
        seed: 2018,
    };
    let naive = simulate(&shards, &FirstIdle, &workload).unwrap();
    let aware = simulate(&shards, &FastestCompletion, &workload).unwrap();
    assert!(
        aware.latency.p95_us < naive.latency.p95_us,
        "fastest-completion p95 {} must beat first-idle p95 {}",
        aware.latency.p95_us,
        naive.latency.p95_us
    );
}

/// The same `Scheduler` trait object drives both the simulator and the
/// live fleet — and the live fleet still folds bit-identical summaries
/// whatever the policy, because outputs are bit-exact on every shard.
#[test]
fn one_scheduler_drives_simulator_and_live_fleet() {
    let policy: &'static dyn Scheduler = &FastestCompletion;

    // Simulator side.
    let sim = simulate(
        &[ShardSpec::uniform("a", 5.0), ShardSpec::uniform("b", 50.0)],
        policy,
        &Workload::ClosedLoop {
            concurrency: 2,
            requests: 40,
            think_us: 0.0,
        },
    )
    .unwrap();
    assert_eq!(sim.scheduler, "fastest-completion");
    assert_eq!(sim.requests, 40);

    // Live side: the same policy dispatches a real batch.
    let sys = small_system();
    let fleet = Fleet::of_machines(3, *sys.machine().config())
        .unwrap()
        .with_scheduler(Box::new(FastestCompletion));
    assert_eq!(fleet.scheduler_name(), sim.scheduler);
    let serial = sys.session().simulate_batch_serial(24, UvMode::On).unwrap();
    let live = sys
        .session_with(Box::new(fleet))
        .with_workers(3)
        .simulate_batch(24, UvMode::On)
        .unwrap();
    assert_eq!(serial, live, "policy changes placement, never results");
}
