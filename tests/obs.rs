//! Acceptance tests for the observability plane, end to end through the
//! facade: one traced front-end run composed with per-chip machine spans
//! exports a deterministic Perfetto trace whose admission, degrade-batch,
//! shard-attempt, and per-layer chip spans are all keyed to the request
//! ids the `FrontendSummary` accounts for — and a disabled sink changes
//! nothing about the simulation's results.

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{CycleAccurateBackend, InferenceBackend, LeastQueued, PartitionedMachine};
use sparsenn::frontend::{
    simulate_frontend, simulate_frontend_traced, BoundedQueues, DegradeBatching, Fault, FaultPlan,
    FrontendConfig, FrontendSummary, HedgeConfig, SloPolicy,
};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::obs::{check_nesting, chrome_trace, NullSink, RingRecorder, Span, SpanKind};
use sparsenn::partition::InterChipConfig;
use sparsenn::serve::{ShardSpec, Workload};
use sparsenn::{SystemBuilder, TrainedSystem, TrainingAlgorithm};

fn small_system() -> TrainedSystem {
    SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 48, 10])
        .rank(5)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(120)
        .test_samples(40)
        .epochs(2)
        .build()
}

fn shared_system() -> &'static TrainedSystem {
    static SYS: std::sync::OnceLock<TrainedSystem> = std::sync::OnceLock::new();
    SYS.get_or_init(small_system)
}

/// The traced study scenario: a 3-shard fleet at 1.4x capacity with
/// hedging, degrade batching, and one slowdown fault, so every span
/// kind shows up in the trace.
fn study_config(service_us: f64) -> (Vec<ShardSpec>, BoundedQueues, FrontendConfig) {
    let fleet: Vec<ShardSpec> = (0..3)
        .map(|i| ShardSpec::uniform(format!("shard-{i}"), service_us))
        .collect();
    let capacity = 3.0e6 / service_us.max(1e-12);
    let slo = SloPolicy {
        high_us: 12.0 * service_us,
        low_us: 48.0 * service_us,
    };
    let cfg = FrontendConfig::new(
        Workload::Poisson {
            rate_rps: 1.4 * capacity,
            requests: 400,
            seed: 17,
        },
        slo,
    )
    .low_fraction(0.4)
    .hedge(HedgeConfig::hedged(6.0 * service_us))
    .degrade_batching(DegradeBatching::new(4, 8.0 * service_us, 0.3))
    .faults(FaultPlan::new(vec![Fault::Slowdown {
        shard: 0,
        at_us: 10.0 * service_us,
        for_us: 200.0 * service_us,
        factor: 8.0,
    }]));
    let gate = BoundedQueues::new(12, 4).degrade_low_beyond(2);
    (fleet, gate, cfg)
}

/// One traced run: front-end spans plus per-chip spans for the first
/// two attempts' request ids, re-run on a 2-chip partitioned machine.
fn capture(sys: &TrainedSystem) -> (FrontendSummary, Vec<Span>) {
    let backend = CycleAccurateBackend::new(sys.machine().clone());
    let net = sys.fixed();
    let input = net.quantize_input(sys.split().test.image(0));
    let service_us = backend
        .run(net, &input, UvMode::On)
        .expect("study input fits the machine")
        .time_us();
    let (fleet, gate, cfg) = study_config(service_us);
    let recorder = RingRecorder::new(1 << 16);
    let summary = simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &recorder)
        .expect("study config is valid");
    let machine =
        PartitionedMachine::new(net, *sys.machine().config(), 2, InterChipConfig::default())
            .expect("study network splits across 2 chips");
    let attempts: Vec<(u64, f64)> = recorder
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Attempt)
        .take(2)
        .map(|s| (s.trace_id, s.start_us))
        .collect();
    assert!(!attempts.is_empty(), "overloaded run must service attempts");
    for (request_id, start_us) in attempts {
        machine
            .run_traced(net, &input, UvMode::On, request_id, start_us, &recorder)
            .expect("study network fits the 2-chip plan");
    }
    (summary, recorder.spans())
}

#[test]
fn trace_is_deterministic_and_keyed_to_summary_request_ids() {
    let sys = shared_system();
    let (summary, spans) = capture(sys);
    let (summary2, spans2) = capture(sys);
    assert_eq!(summary, summary2, "traced runs are deterministic");
    assert_eq!(
        chrome_trace(&spans),
        chrome_trace(&spans2),
        "one seed, one exact trace file"
    );
    assert!(check_nesting(&spans).is_none(), "span nesting holds");

    let count = |kind: SpanKind| spans.iter().filter(|s| s.kind == kind).count();
    // Admission verdicts: one zero-duration decision span per offered
    // request, split exactly as the summary accounts.
    let offered: usize = summary.classes.iter().map(|c| c.offered).sum();
    let degraded: usize = summary.classes.iter().map(|c| c.degraded).sum();
    let shed: usize = summary.classes.iter().map(|c| c.shed).sum();
    assert_eq!(
        count(SpanKind::Admit) + count(SpanKind::Degrade) + count(SpanKind::Shed),
        offered,
        "every offered request gets an admission verdict span"
    );
    assert_eq!(count(SpanKind::Degrade), degraded);
    assert_eq!(count(SpanKind::Shed), shed);
    // One hold-window span per request flushed through a degrade batch.
    let batched_requests =
        (summary.mean_degrade_batch * summary.degrade_batches as f64).round() as usize;
    assert!(
        summary.degrade_batches > 0,
        "study load must trigger degrade batching"
    );
    assert_eq!(
        count(SpanKind::DegradeBatch),
        batched_requests,
        "every degrade-batched request gets a hold-window span"
    );
    assert_eq!(count(SpanKind::Hedge), summary.hedges_issued);
    assert_eq!(count(SpanKind::Retry), summary.retries);
    assert_eq!(count(SpanKind::Cancel), summary.cancelled_attempts);

    // Every attempt and per-layer chip span joins back to a request
    // span's id — the whole trace correlates on one key.
    let request_ids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Request)
        .map(|s| s.trace_id)
        .collect();
    assert_eq!(
        request_ids.len(),
        offered,
        "every offered request's life gets a request span (shed is a terminal outcome)"
    );
    for s in spans.iter().filter(|s| {
        matches!(
            s.kind,
            SpanKind::Attempt | SpanKind::W | SpanKind::Vu | SpanKind::Broadcast | SpanKind::Gather
        )
    }) {
        assert!(
            request_ids.contains(&s.trace_id),
            "{:?} span keyed to unknown request id {}",
            s.kind,
            s.trace_id
        );
    }
    // The chip timeline covers every layer of the partitioned network.
    let layers = sys.fixed().num_layers();
    for kind in [SpanKind::W, SpanKind::Vu] {
        assert!(
            count(kind) >= layers,
            "{kind:?} spans must cover all {layers} layers"
        );
    }
    assert!(
        count(SpanKind::Broadcast) > 0,
        "inter-chip broadcast traced"
    );
    assert!(count(SpanKind::Gather) > 0, "inter-chip gather traced");
}

#[test]
fn disabled_sink_changes_nothing() {
    let sys = shared_system();
    let backend = CycleAccurateBackend::new(sys.machine().clone());
    let net = sys.fixed();
    let input = net.quantize_input(sys.split().test.image(0));
    let service_us = backend
        .run(net, &input, UvMode::On)
        .expect("study input fits the machine")
        .time_us();
    let (fleet, gate, cfg) = study_config(service_us);
    let plain =
        simulate_frontend(&fleet, &LeastQueued, &gate, &cfg).expect("study config is valid");
    let traced = simulate_frontend_traced(&fleet, &LeastQueued, &gate, &cfg, &NullSink)
        .expect("study config is valid");
    assert_eq!(plain, traced, "a NullSink run is bit-identical to untraced");
}
