//! Batch sweep: measure the batch-native machine path for B = 1..=8,
//! then feed the measured service table into the queue-aware batching
//! simulator and print the serving trade — throughput per shard rises
//! with the batch cap under saturation while light-load tail latency
//! pays for the hold window.
//!
//! ```sh
//! cargo run --release --example batch_sweep
//! ```

use sparsenn::datasets::DatasetKind;
use sparsenn::engine::{BatchPolicy, CycleAccurateBackend, FirstIdle, InferenceBackend};
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::serve::{simulate_batched, BatchShardSpec, MetricsMode, Workload};
use sparsenn::{SystemBuilder, TrainingAlgorithm};

const MAX_BATCH: usize = 8;

fn main() {
    // 1. Train a small system and run real test images through the
    //    cycle-accurate machine's batched core.
    println!("training a 784-128-10 network with a rank-6 predictor…");
    let system = SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 128, 10])
        .rank(6)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(400)
        .test_samples(100)
        .epochs(3)
        .build();
    let backend = CycleAccurateBackend::new(system.machine().clone());
    let net = system.fixed();
    let test = &system.split().test;
    let inputs: Vec<_> = (0..MAX_BATCH)
        .map(|i| net.quantize_input(test.image(i % test.len())))
        .collect();

    // 2. The amortization curve: one W-memory pass serves the whole
    //    batch, so per-sample time falls as B grows while every
    //    per-sample result stays bit-identical to a serial run.
    println!("\n  B | batch (us) | us/sample | speedup | W-read amortization");
    println!("  --|------------|-----------|---------|--------------------");
    let mut table = Vec::with_capacity(MAX_BATCH);
    for b in 1..=MAX_BATCH {
        let rec = backend
            .run_batch(net, &inputs[..b], UvMode::On)
            .expect("the network fits the machine");
        table.push(rec.batch_time_us);
        println!(
            "  {b} | {:10.2} | {:9.2} | {:6.2}x | {:.2}x fewer W reads",
            rec.batch_time_us,
            rec.mean_time_us(),
            rec.serial_time_us() / rec.batch_time_us,
            rec.w_read_amortization()
        );
    }

    // 3. The serving knee: the measured table drives the virtual-time
    //    batching simulator at a saturating and a light offered load.
    let spec = BatchShardSpec::with_table("machine", table.clone());
    let serial_capacity = 1e6 / table[0];
    let deadline_us = 40.0 * table[0];
    let run = |cap: usize, rate: f64| {
        simulate_batched(
            std::slice::from_ref(&spec),
            &FirstIdle,
            BatchPolicy::SizeOrDeadline {
                max: cap,
                deadline_us,
            },
            &Workload::Poisson {
                rate_rps: rate,
                requests: 3000,
                seed: 7,
            },
            MetricsMode::Streaming,
        )
        .expect("valid batching simulation")
    };
    println!(
        "\none shard, SizeOrDeadline(B, {deadline_us:.0} us), serial capacity {serial_capacity:.0} rps:"
    );
    println!("\n  cap | throughput @2.5x (rps) | mean batch | p99 @0.4x (us)");
    println!("  ----|------------------------|------------|---------------");
    for cap in [1usize, 2, 4, 8] {
        let sat = run(cap, serial_capacity * 2.5);
        let light = run(cap, serial_capacity * 0.4);
        println!(
            "  {cap:3} | {:22.0} | {:10.2} | {:13.1}",
            sat.throughput_rps, sat.mean_batch, light.latency.p99_us
        );
    }

    println!(
        "\nBatching amortizes the W-memory traffic across requests: capacity climbs \
         with the batch cap, and the fill/deadline hold shows up as light-load tail \
         latency — pick the cap where your SLO still clears."
    );
}
