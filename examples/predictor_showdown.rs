//! Predictor showdown: the paper's three training regimes head to head on
//! the hardest variant (ROT), at a large and a small predictor rank.
//!
//! Reproduces in miniature the story of Fig. 6: the truncated-SVD
//! predictor degrades as the rank shrinks (its once-per-epoch update
//! minimizes reconstruction error, not sign-prediction error), while the
//! end-to-end trained predictor holds accuracy *and* higher sparsity.
//!
//! ```sh
//! cargo run --release --example predictor_showdown
//! ```

use sparsenn::datasets::DatasetKind;
use sparsenn::{SystemBuilder, TrainingAlgorithm};

fn main() {
    let kind = DatasetKind::Rot;
    println!("dataset: {kind} (digits rotated by a uniform random angle)\n");
    println!(
        "{:<14} {:>6} {:>10} {:>22}",
        "algorithm", "rank", "TER %", "hidden sparsity %"
    );

    for &rank in &[32usize, 6] {
        for alg in [
            TrainingAlgorithm::NoUv,
            TrainingAlgorithm::Svd,
            TrainingAlgorithm::EndToEnd,
        ] {
            let sys = SystemBuilder::new(kind)
                .dims(&[784, 256, 10])
                .rank(rank)
                .algorithm(alg)
                .train_samples(800)
                .test_samples(200)
                .epochs(5)
                .build();
            let sparsity = match alg {
                TrainingAlgorithm::NoUv => "n/a".to_string(),
                _ => format!("{:.1}", sys.predicted_sparsity()[0]),
            };
            println!(
                "{:<14} {:>6} {:>10.2} {:>22}",
                alg.to_string(),
                rank,
                sys.test_error_rate(),
                sparsity
            );
        }
        println!();
    }

    println!(
        "Expected shape (paper Fig. 6): at the small rank the SVD predictor's TER \
         drifts up, the end-to-end predictor stays near the NO-UV reference."
    );
}
