//! A guided tour of the simulated accelerator: phase-by-phase cycle
//! breakdown, NoC behaviour, bit-exactness against the golden model, and
//! what the predictor changes at the micro-architectural level.
//!
//! ```sh
//! cargo run --release --example accelerator_tour
//! ```

use sparsenn::linalg::init::seeded_rng;
use sparsenn::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn::model::{Mlp, PredictedNetwork};
use sparsenn::sim::{Machine, MachineConfig};

fn main() {
    // A paper-shaped layer stack: 784 → 1024 → 1024 → 10, rank-15
    // predictors, random weights (training is not the point here).
    let mut rng = seeded_rng(42);
    let mlp = Mlp::random(&[784, 1024, 1024, 10], &mut rng);
    let net =
        FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 15, &mut rng));

    // A 75 %-sparse input vector, like a MNIST digit.
    let x: Vec<f32> = (0..784)
        .map(|i| {
            if i % 4 == 0 {
                ((i as f32) * 0.13).sin().abs()
            } else {
                0.0
            }
        })
        .collect();
    let xq = net.quantize_input(&x);

    let cfg = MachineConfig::default();
    println!(
        "machine: {} PEs, {} KB W-memory/PE, {}-entry act queues, {} ns clock, {} GOP/s peak\n",
        cfg.num_pes(),
        cfg.w_mem_bytes / 1024,
        cfg.act_queue_depth,
        cfg.clock_ns,
        cfg.peak_gops()
    );
    let machine = Machine::new(cfg);

    for mode in [UvMode::Off, UvMode::On] {
        println!("=== {mode:?} ===");
        let run = machine.run_network(&net, &xq, mode);
        for (l, layer) in run.layers.iter().enumerate() {
            let mask_info = match &layer.mask {
                Some(m) => {
                    let active = m.iter().filter(|&&b| b).count();
                    format!("{active}/{} rows predicted active", m.len())
                }
                None => "no predictor".to_string(),
            };
            println!(
                "layer {l}: {:>6} cycles (V/U {:>4}, W {:>6}) | {:>8} W-reads | util {:>5.1}% | {}",
                layer.cycles,
                layer.vu_cycles,
                layer.w_cycles,
                layer.events.w_reads,
                layer.events.utilization() * 100.0,
                mask_info
            );
            println!(
                "         NoC: {} hops, {} ACC merges, peak buffer occupancy {}",
                layer.events.noc.hops, layer.events.noc.acc_merges, layer.events.noc.peak_occupancy
            );
        }

        // The RTL-vs-golden check the paper did against Matlab.
        let golden = net.forward(&xq, mode);
        let exact = run
            .layers
            .iter()
            .zip(&golden)
            .all(|(r, g)| r.output == g.output && r.mask == g.mask);
        println!(
            "bit-exact against the fixed-point golden model: {}\n",
            if exact { "YES" } else { "NO (bug!)" }
        );
        assert!(exact);
    }

    println!(
        "Note how uv_on spends a few hundred cycles in the V/U phases to cut the W \
         phase's memory traffic — and how out-of-order H-tree delivery never affects \
         the outputs (order-independent wide accumulation)."
    );
}
