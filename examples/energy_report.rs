//! ASIC-style reporting: the Table III area breakdown, a Fig. 7-style
//! power estimate, and the Table IV technology-scaling argument.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use sparsenn::datasets::DatasetKind;
use sparsenn::energy::area::area_report;
use sparsenn::energy::scaling::normalize_energy_to_sparsenn;
use sparsenn::energy::sram::SramMacro;
use sparsenn::energy::TechNode;
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::sim::simd::SimdPlatform;
use sparsenn::sim::MachineConfig;
use sparsenn::{SystemBuilder, TrainingAlgorithm};

fn main() {
    let cfg = MachineConfig::default();

    // --- Table III style area report -----------------------------------
    println!("{}\n", area_report(&cfg));

    // --- Why the clock is 2 ns ------------------------------------------
    let w = SramMacro::new(cfg.w_mem_bytes, 16, TechNode::n65());
    println!(
        "128 KB W-macro access time: {:.2} ns (> 1.7 ns — hence the paper's 2 ns clock)\n",
        w.access_time_ns()
    );

    // --- A small Fig. 7-style measurement -------------------------------
    println!("training a small BASIC system for a power comparison…");
    let sys = SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 512, 10])
        .rank(15)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(600)
        .test_samples(100)
        .epochs(4)
        .build();
    for mode in [UvMode::Off, UvMode::On] {
        let summary = sys
            .simulate_batch(4, mode)
            .expect("network fits the default machine");
        let hidden = &summary.layers[0];
        println!(
            "  {:?}: hidden layer: {:.0} cycles, {}",
            mode, hidden.cycles, hidden.power
        );
    }

    // --- Table IV scaling argument ---------------------------------------
    let engine = SimdPlatform::dnn_engine();
    let cycles = engine.layer_cycles(1000, 785, 785, 1000);
    let energy = engine.energy_uj(cycles);
    let (factor, scaled) =
        normalize_energy_to_sparsenn(energy, engine.w_mem_bytes, TechNode::n28());
    println!(
        "\nDNN-Engine (28 nm, 1 MB): {cycles} cycles ≈ {energy:.1} uJ on a dense 1000×784 layer;"
    );
    println!(
        "scaled to SparseNN's 65 nm / 8 MB memory configuration: ×{factor:.1} ⇒ {scaled:.1} uJ \
         (the paper's ≈11× factor behind its 4× energy-efficiency conclusion)."
    );
}
