//! Visual sanity check of the synthetic datasets: prints one digit per
//! variant as ASCII art and reports the input-sparsity profile that drives
//! the accelerator experiments (BASIC/ROT sparse, BG-RAND dense).
//!
//! ```sh
//! cargo run --release --example dataset_gallery
//! ```

use sparsenn::datasets::{to_ascii, DatasetKind, DatasetSpec};

fn main() {
    for kind in DatasetKind::ALL {
        let split = DatasetSpec {
            kind,
            train: 12,
            test: 0,
            seed: 2026,
        }
        .generate();
        let data = split.train;
        println!(
            "=== {kind} — input sparsity {:.1}% ===",
            data.input_sparsity() * 100.0
        );
        // Show three digits side by side.
        let arts: Vec<Vec<String>> = (0..3)
            .map(|i| to_ascii(data.image(i)).lines().map(str::to_owned).collect())
            .collect();
        let labels: Vec<u8> = (0..3).map(|i| data.label(i)).collect();
        println!(
            "{:^28}  {:^28}  {:^28}",
            format!("label {}", labels[0]),
            format!("label {}", labels[1]),
            format!("label {}", labels[2])
        );
        for ((a, b), c) in arts[0].iter().zip(&arts[1]).zip(&arts[2]) {
            println!("{a}  {b}  {c}");
        }
        println!();
    }
    println!(
        "BG-RAND's dense background is what makes its first hidden layer the most \
         expensive bar in Fig. 7: every one of the 784 input activations must be \
         broadcast."
    );
}
