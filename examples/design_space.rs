//! Design-space exploration: the paper claims SparseNN is a *scalable*
//! architecture — this example sweeps the PE count (one H-tree level more
//! or less) and the activation-queue depth, and reports cycles and
//! utilization for the same workload on every machine.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use sparsenn::linalg::init::seeded_rng;
use sparsenn::model::fixedpoint::{FixedNetwork, UvMode};
use sparsenn::model::{Mlp, PredictedNetwork};
use sparsenn::noc::NocConfig;
use sparsenn::sim::{Machine, MachineConfig};

fn main() {
    let mut rng = seeded_rng(7);
    let mlp = Mlp::random(&[784, 1024, 10], &mut rng);
    let net =
        FixedNetwork::from_float(&PredictedNetwork::with_random_predictors(mlp, 15, &mut rng));
    let x: Vec<f32> = (0..784)
        .map(|i| {
            if i % 3 == 0 {
                ((i as f32) * 0.29).sin().abs()
            } else {
                0.0
            }
        })
        .collect();
    let xq = net.quantize_input(&x);

    println!("workload: 1024×784 hidden layer, ~33% dense input, rank-15 predictor\n");
    println!(
        "{:>5} {:>7} {:>14} {:>14} {:>12} {:>12}",
        "PEs", "queue", "cycles uv_off", "cycles uv_on", "util off %", "util on %"
    );
    for num_pes in [16usize, 64, 256] {
        for queue in [4usize, 16] {
            let cfg = MachineConfig {
                noc: NocConfig {
                    num_pes,
                    ..NocConfig::default()
                },
                act_queue_depth: queue,
                ..MachineConfig::default()
            };
            let machine = Machine::new(cfg);
            let off = machine.run_layer(&net.layers()[0], None, &xq, true, UvMode::Off);
            let on = machine.run_layer(
                &net.layers()[0],
                net.predictors().first(),
                &xq,
                true,
                UvMode::On,
            );
            println!(
                "{:>5} {:>7} {:>14} {:>14} {:>12.1} {:>12.1}",
                num_pes,
                queue,
                off.cycles,
                on.cycles,
                off.events.utilization() * 100.0,
                on.events.utilization() * 100.0
            );
            // Scaling must never change the computed result.
            let reference = Machine::new(MachineConfig::default()).run_layer(
                &net.layers()[0],
                None,
                &xq,
                true,
                UvMode::Off,
            );
            assert_eq!(
                off.output, reference.output,
                "results must be machine-independent"
            );
        }
    }

    println!(
        "\n4× more PEs ⇒ close to 4× fewer cycles while utilization holds — the \
         distributed-memory H-tree scales where a shared-memory SIMD row cannot \
         (Table IV's bandwidth argument). The predictor's advantage persists at \
         every machine size."
    );
}
