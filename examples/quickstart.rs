//! Quickstart: train a predictor-equipped network, quantize it, run it on
//! the simulated accelerator and compare both UV modes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparsenn::datasets::DatasetKind;
use sparsenn::energy::PowerModel;
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::{SystemBuilder, TrainingAlgorithm};

fn main() {
    // 1. Synthesize MNIST-BASIC, train a 3-layer network with a rank-8
    //    output-sparsity predictor using the paper's end-to-end algorithm.
    println!("training a 784-256-10 network with a rank-8 predictor on synthetic MNIST-BASIC…");
    let system = SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 256, 10])
        .rank(8)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(800)
        .test_samples(200)
        .epochs(5)
        .build();

    println!("  test error rate:        {:.2} %", system.test_error_rate());
    println!(
        "  predicted output sparsity (hidden layer): {:.1} %",
        system.predicted_sparsity()[0]
    );

    // 2. Run one test image through the cycle-level accelerator, with the
    //    predictor disabled (EIE baseline) and enabled (SparseNN).
    let model = PowerModel::new(system.machine().config());
    for mode in [UvMode::Off, UvMode::On] {
        let run = system.simulate_sample(0, mode);
        let events = run.total_events();
        let power = model.estimate(&events);
        println!(
            "\n  {:?}: {} cycles, {} W-memory reads, {} MACs",
            mode,
            run.total_cycles(),
            events.w_reads,
            events.macs
        );
        println!(
            "        {:.2} us, {:.2} uJ, {:.0} mW (predicted class: {})",
            power.time_us,
            power.energy_uj,
            power.total_mw,
            run.classify()
        );
    }

    println!(
        "\nThe UV predictor trades a short V/U prediction phase for skipping most of \
         the W-memory traffic — the paper's core claim."
    );
}
