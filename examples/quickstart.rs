//! Quickstart: train a predictor-equipped network, quantize it, run it on
//! the simulated accelerator and compare both UV modes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sparsenn::datasets::DatasetKind;
use sparsenn::energy::PowerModel;
use sparsenn::model::fixedpoint::UvMode;
use sparsenn::{SystemBuilder, TrainingAlgorithm};

fn main() {
    // 1. Synthesize MNIST-BASIC, train a 3-layer network with a rank-8
    //    output-sparsity predictor using the paper's end-to-end algorithm.
    println!("training a 784-256-10 network with a rank-8 predictor on synthetic MNIST-BASIC…");
    let system = SystemBuilder::new(DatasetKind::Basic)
        .dims(&[784, 256, 10])
        .rank(8)
        .algorithm(TrainingAlgorithm::EndToEnd)
        .train_samples(800)
        .test_samples(200)
        .epochs(5)
        .build();

    println!(
        "  test error rate:        {:.2} %",
        system.test_error_rate()
    );
    println!(
        "  predicted output sparsity (hidden layer): {:.1} %",
        system.predicted_sparsity()[0]
    );

    // 2. Open a serving session on the cycle-accurate backend and run one
    //    test image with the predictor disabled (EIE baseline) and enabled
    //    (SparseNN). Sessions serve any InferenceBackend — swap in
    //    `GoldenBackend` or a `SimdBackend` with one line.
    let session = system.session();
    let model = PowerModel::new(system.machine().config());
    for mode in [UvMode::Off, UvMode::On] {
        let run = session.run_sample(0, mode).expect("sample 0 exists");
        let events = run.total_events();
        let power = model.estimate(&events);
        println!(
            "\n  {:?}: {} cycles, {} W-memory reads, {} MACs",
            mode,
            run.total_cycles(),
            events.w_reads,
            events.macs
        );
        println!(
            "        {:.2} us, {:.2} uJ, {:.0} mW (predicted class: {})",
            power.time_us,
            power.energy_uj,
            power.total_mw,
            run.classify()
        );
    }

    // 3. Batch inference fans out over all cores and folds into the same
    //    summary the serial path produces.
    let batch = session
        .simulate_batch(16, UvMode::On)
        .expect("batch simulation on the default machine");
    println!(
        "\n  batch of {}: {:.1}% fixed-point accuracy, {:.0} mean cycles on the hidden layer",
        batch.samples,
        batch.fixed_accuracy * 100.0,
        batch.layers[0].cycles
    );

    println!(
        "\nThe UV predictor trades a short V/U prediction phase for skipping most of \
         the W-memory traffic — the paper's core claim."
    );
}
