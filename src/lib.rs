//! **sparsenn** — a from-scratch Rust reproduction of *SparseNN: An
//! Energy-Efficient Neural Network Accelerator Exploiting Input and Output
//! Sparsity* (Zhu, Jiang, Chen, Tsui — DATE 2018, arXiv:1711.01263).
//!
//! This facade re-exports the whole workspace through
//! [`sparsenn_core`]: synthetic datasets, the end-to-end predictor
//! training of Algorithm 1 and its baselines, the 16-bit fixed-point golden
//! model, the cycle-level 64-PE accelerator simulator with its H-tree NoC,
//! and the energy/power/area models. See `README.md` for a tour and
//! `examples/` for runnable entry points.
//!
//! ```
//! use sparsenn::datasets::DatasetKind;
//! use sparsenn::{SystemBuilder, TrainingAlgorithm};
//!
//! let sys = SystemBuilder::new(DatasetKind::Basic)
//!     .dims(&[784, 32, 10])
//!     .rank(4)
//!     .algorithm(TrainingAlgorithm::EndToEnd)
//!     .train_samples(60)
//!     .test_samples(20)
//!     .epochs(1)
//!     .build();
//! assert!(sys.test_error_rate() <= 100.0);
//! ```

pub use sparsenn_core::*;

/// Virtual-time serving simulator (re-export of `sparsenn-serve`):
/// workload generators, queueing metrics, and the same [`engine::Scheduler`]
/// policies the live [`engine::Fleet`] dispatches with.
pub use sparsenn_serve as serve;

/// Production front end (re-export of `sparsenn-frontend`): admission
/// control and load shedding behind the same [`engine::AdmissionGate`]
/// the live [`engine::Fleet`] consults, plus fault injection, hedged
/// requests, autoscaling, and the SLO policy sweep.
pub use sparsenn_frontend as frontend;

/// Observability plane (re-export of `sparsenn-obs`): trace sinks and
/// typed spans on the virtual clock, Chrome trace-event (Perfetto)
/// export, the unified [`obs::LatencyStat`] accumulator, the
/// [`obs::MetricsRegistry`], and wall-clock profiling hooks.
pub use sparsenn_obs as obs;

/// Native CPU kernels (re-export of `sparsenn-kernel`): the two-stage
/// prescan + block-skip inference kernel behind
/// [`engine::KernelBackend`] — bit-exact vs the golden model, engineered
/// for measured wall-clock speed rather than modelled cycles.
pub use sparsenn_kernel as kernel;
